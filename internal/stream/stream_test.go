package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/gen"
	"asmodel/internal/model"
	"asmodel/internal/mrt"
	"asmodel/internal/serve"
)

// --- Fixture -------------------------------------------------------------

var (
	fixtureOnce sync.Once
	fixtureDS   *dataset.Dataset
	fixtureErr  error
)

// testDataset generates a small synthetic internet once per test binary.
func testDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	fixtureOnce.Do(func() {
		in, err := gen.Generate(gen.Config{
			Seed:             7,
			NumTier1:         2,
			NumTier2:         4,
			NumTier3:         6,
			NumStub:          8,
			RoutersTier1:     2,
			RoutersTier2:     2,
			RoutersTier3:     1,
			MultiHomeProb:    0.5,
			Tier2PeerProb:    0.2,
			Tier3PeerProb:    0.1,
			ParallelLinkProb: 0.3,
			WeirdPolicyFrac:  0.1,
			NumVantageASes:   6,
			MaxVantagePerAS:  1,
		})
		if err != nil {
			fixtureErr = err
			return
		}
		ds, err := in.RunAll()
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureDS = ds.Normalize()
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureDS
}

// writeUpdatesFile emits the fixture dataset as an MRT update stream and
// returns the file path and record count.
func writeUpdatesFile(t testing.TB, dir string) (string, int) {
	t.Helper()
	ds := testDataset(t)
	path := filepath.Join(dir, "updates.mrt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := mrt.WriteUpdates(f, ds, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if n < 40 {
		t.Fatalf("fixture too small: %d records", n)
	}
	return path, n
}

// bootstrapDataset replays the whole update stream back into a dataset,
// so the bootstrap universe uses the same (CIDR) prefix naming the
// stream's own batch snapshots will — what a real deployment gets from
// bootstrapping off a RIB/update archive of the same collector.
func bootstrapDataset(t testing.TB, path string) *dataset.Dataset {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, _, err := mrt.UpdatesToDataset(f, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// streamCfg builds the canonical test configuration: oneshot file
// source, ~5 batches, bootstrap from the full dataset.
func streamCfg(t testing.TB, dir string, workers int, events *[]Event) (Config, int) {
	t.Helper()
	path, n := writeUpdatesFile(t, dir)
	batch := n / 5
	if batch < 1 {
		batch = 1
	}
	cfg := Config{
		Source:       NewFileSource(path, false, 0),
		StatePath:    filepath.Join(dir, "stream.state"),
		BatchRecords: batch,
		Workers:      workers,
		Bootstrap:    bootstrapDataset(t, path),
		Logf:         t.Logf,
	}
	if events != nil {
		cfg.Observer = func(ev Event) { *events = append(*events, ev) }
	}
	return cfg, n
}

// --- Crash harness -------------------------------------------------------

// crashSentinel is the panic value the crash seams throw; the harness
// recovers it to simulate a process death at an exact point.
type crashSentinel struct {
	point string
	seq   int64
}

// runMaybeCrash runs the streamer, converting a crashSentinel panic into
// crashed=true (any other panic propagates).
func runMaybeCrash(ctx context.Context, s *Streamer) (res *Result, err error, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashSentinel); ok {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	res, err = s.Run(ctx)
	return
}

// tornWriter passes bytes through until failAt, then panics — leaving a
// torn temp file behind exactly as a SIGKILL mid-write would.
type tornWriter struct {
	w      io.Writer
	n      int64
	failAt int64
	seq    int64
}

func (tw *tornWriter) Write(p []byte) (int, error) {
	if rest := tw.failAt - tw.n; int64(len(p)) > rest {
		if rest > 0 {
			n, _ := tw.w.Write(p[:rest])
			tw.n += int64(n)
		}
		panic(crashSentinel{point: "torn-write", seq: tw.seq})
	}
	n, err := tw.w.Write(p)
	tw.n += int64(n)
	return n, err
}

// armTornWrite installs a stateWriteWrap that tears the commit of the
// given 1-based commit number at byte failAt (commit 1 is the bootstrap
// batch-0 state when Config.Bootstrap is set). Returns a disarm func.
func armTornWrite(commitNo int, failAt int64) func() {
	count := 0
	stateWriteWrap = func(w io.Writer) io.Writer {
		count++
		if count == commitNo {
			return &tornWriter{w: w, failAt: failAt, seq: int64(commitNo)}
		}
		return w
	}
	return func() { stateWriteWrap = nil }
}

// normState masks the source-descriptor line (it embeds the per-test
// temp dir) so state files from different directories can be compared
// byte-for-byte.
func normState(b []byte) []byte {
	return sourceLineRe.ReplaceAll(b, []byte("source X"))
}

var sourceLineRe = regexp.MustCompile(`(?m)^source .*$`)

func batchEvents(evs []Event) []Event {
	var out []Event
	for _, ev := range evs {
		if ev.Type == "batch" {
			out = append(out, ev)
		}
	}
	return out
}

func eventJSON(t *testing.T, ev Event) string {
	t.Helper()
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// cleanRun executes an uninterrupted run and returns the final state
// bytes, result and batch events — the reference for every crash
// schedule.
func cleanRun(t *testing.T, workers int) ([]byte, *Result, []Event) {
	t.Helper()
	dir := t.TempDir()
	var evs []Event
	cfg, _ := streamCfg(t, dir, workers, &evs)
	res, err := New(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.ReadFile(cfg.StatePath)
	if err != nil {
		t.Fatal(err)
	}
	return st, res, batchEvents(evs)
}

// --- Tests ---------------------------------------------------------------

// TestCleanRunDeterministic pins the base contract: the same stream at
// any worker count produces byte-identical state files, identical
// results and identical batch-event streams.
func TestCleanRunDeterministic(t *testing.T) {
	st1, res1, evs1 := cleanRun(t, 1)
	st4, res4, evs4 := cleanRun(t, 4)
	if !bytes.Equal(normState(st1), normState(st4)) {
		t.Fatalf("state files differ between workers=1 and workers=4")
	}
	if res1.Batches == 0 || res1.Records == 0 {
		t.Fatalf("empty run: %+v", res1)
	}
	r1, r4 := *res1, *res4
	r1.SkipReport, r4.SkipReport = nil, nil
	if r1 != r4 {
		t.Fatalf("results differ:\n  w1: %+v\n  w4: %+v", r1, r4)
	}
	if len(evs1) != len(evs4) {
		t.Fatalf("batch event counts differ: %d vs %d", len(evs1), len(evs4))
	}
	for i := range evs1 {
		if eventJSON(t, evs1[i]) != eventJSON(t, evs4[i]) {
			t.Fatalf("batch event %d differs:\n  w1: %s\n  w4: %s",
				i, eventJSON(t, evs1[i]), eventJSON(t, evs4[i]))
		}
	}
	if res1.Totals.RefinedPrefixes == 0 {
		t.Fatalf("no prefixes refined: %+v", res1.Totals)
	}
}

// TestCrashMatrix is the recovery proof: for every fault point and
// worker count, a run killed mid-stream and restarted produces the same
// final state bytes, result counts and batch-event stream as an
// uninterrupted run. "torn-cursor" and "torn-checkpoint" tear the
// atomic state write inside the cursor lines and inside the embedded
// model respectively; the hook points crash the loop itself.
func TestCrashMatrix(t *testing.T) {
	type fault struct {
		name string
		// hook-based crash (point + batch seq), or torn write at a byte
		// offset of a commit.
		point    string
		seq      int64
		tornAt   int64
		tornSeq  int   // 1-based commit number to tear
		loseSeqs []int64 // batch events permanently lost (committed, never emitted)
	}
	faults := []fault{
		{name: "mid-batch-1", point: "mid-batch", seq: 1},
		{name: "mid-batch-3", point: "mid-batch", seq: 3},
		{name: "pre-commit-2", point: "pre-commit", seq: 2},
		{name: "post-commit-2", point: "post-commit", seq: 2, loseSeqs: []int64{2}},
		{name: "between-batches-1", point: "between-batches", seq: 1},
		// Commit 1 is the bootstrap batch-0 state; commit k+1 carries
		// batch k. Byte 40 lands inside the cursor lines; -1 resolves to
		// the middle of the file, inside the embedded model section.
		{name: "torn-cursor-b2", tornSeq: 3, tornAt: 40},
		{name: "torn-checkpoint-b2", tornSeq: 3, tornAt: -1},
	}
	for _, workers := range []int{1, 4} {
		wantState, wantRes, wantEvs := cleanRun(t, workers)
		for _, f := range faults {
			f := f
			t.Run(f.name+sfx(workers), func(t *testing.T) {
				dir := t.TempDir()
				var evs []Event
				cfg, _ := streamCfg(t, dir, workers, &evs)

				// Run 1: crash at the scheduled point.
				s := New(cfg)
				if f.point != "" {
					s.crashHook = func(point string, seq int64) {
						if point == f.point && seq == f.seq {
							panic(crashSentinel{point: point, seq: seq})
						}
					}
				} else {
					failAt := f.tornAt
					if failAt < 0 {
						failAt = int64(len(wantState)) / 2
					}
					defer armTornWrite(f.tornSeq, failAt)()
				}
				_, _, crashed := runMaybeCrash(context.Background(), s)
				if !crashed {
					t.Fatalf("fault did not fire")
				}
				stateWriteWrap = nil

				// Run 2: restart the same configuration; it must resume
				// from the committed cursor and finish the stream.
				cfg2, _ := streamCfg(t, dir, workers, &evs)
				cfg2.Source = NewFileSource(filepath.Join(dir, "updates.mrt"), false, 0)
				res, err := New(cfg2).Run(context.Background())
				if err != nil {
					t.Fatalf("restart failed: %v", err)
				}

				gotState, err := os.ReadFile(cfg.StatePath)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(normState(gotState), normState(wantState)) {
					t.Fatalf("final state bytes differ from clean run (%d vs %d bytes)",
						len(gotState), len(wantState))
				}
				if res.Batches != wantRes.Batches || res.Records != wantRes.Records ||
					res.LastTS != wantRes.LastTS || res.Totals != wantRes.Totals {
					t.Fatalf("result differs from clean run:\n  got:  %+v\n  want: %+v", *res, *wantRes)
				}

				// Batch events: no duplicates, every emitted event
				// byte-identical to the clean run's, and only the
				// documented commit-to-emit-window losses absent.
				lost := map[int64]bool{}
				for _, seq := range f.loseSeqs {
					lost[seq] = true
				}
				got := batchEvents(evs)
				gi := 0
				for _, want := range wantEvs {
					if lost[want.Seq] {
						continue
					}
					if gi >= len(got) {
						t.Fatalf("batch event seq %d missing", want.Seq)
					}
					if eventJSON(t, got[gi]) != eventJSON(t, want) {
						t.Fatalf("batch event seq %d differs:\n  got:  %s\n  want: %s",
							want.Seq, eventJSON(t, got[gi]), eventJSON(t, want))
					}
					gi++
				}
				if gi != len(got) {
					t.Fatalf("%d extra/duplicate batch events", len(got)-gi)
				}
			})
		}
	}
}

func sfx(workers int) string {
	if workers == 1 {
		return "/w1"
	}
	return "/w4"
}

// TestDoubleCrash stacks two crashes (one torn commit, one post-commit
// kill) before the run completes; exactly-once must still hold.
func TestDoubleCrash(t *testing.T) {
	wantState, wantRes, _ := cleanRun(t, 1)
	dir := t.TempDir()
	cfg, _ := streamCfg(t, dir, 1, nil)

	s := New(cfg)
	defer armTornWrite(2, 100)() // tear batch 1's commit
	_, _, crashed := runMaybeCrash(context.Background(), s)
	if !crashed {
		t.Fatal("torn write did not fire")
	}
	stateWriteWrap = nil

	cfg2, _ := streamCfg(t, dir, 1, nil)
	s2 := New(cfg2)
	s2.crashHook = func(point string, seq int64) {
		if point == "post-commit" && seq == 2 {
			panic(crashSentinel{point: point, seq: seq})
		}
	}
	_, _, crashed = runMaybeCrash(context.Background(), s2)
	if !crashed {
		t.Fatal("post-commit crash did not fire")
	}

	cfg3, _ := streamCfg(t, dir, 1, nil)
	res, err := New(cfg3).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatal("restart did not report recovery")
	}
	gotState, err := os.ReadFile(cfg.StatePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normState(gotState), normState(wantState)) {
		t.Fatal("final state differs from clean run after two crashes")
	}
	if res.Totals != wantRes.Totals {
		t.Fatalf("totals differ: got %+v want %+v", res.Totals, wantRes.Totals)
	}
}

// TestBootstrapFromFirstBatch runs without a bootstrap dataset: the
// first batch defines the model, and crash recovery still reproduces
// the clean run byte-for-byte.
func TestBootstrapFromFirstBatch(t *testing.T) {
	run := func(crash bool) ([]byte, *Result) {
		dir := t.TempDir()
		var evs []Event
		cfg, _ := streamCfg(t, dir, 2, &evs)
		cfg.Bootstrap = nil
		if crash {
			s := New(cfg)
			s.crashHook = func(point string, seq int64) {
				if point == "pre-commit" && seq == 1 {
					panic(crashSentinel{point: point, seq: seq})
				}
			}
			_, _, crashed := runMaybeCrash(context.Background(), s)
			if !crashed {
				t.Fatal("crash did not fire")
			}
			cfg, _ = streamCfg(t, dir, 2, &evs)
			cfg.Bootstrap = nil
		}
		res, err := New(cfg).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		be := batchEvents(evs)
		if len(be) == 0 || !be[0].Bootstrap {
			t.Fatalf("first batch not marked bootstrap: %+v", be)
		}
		st, err := os.ReadFile(cfg.StatePath)
		if err != nil {
			t.Fatal(err)
		}
		return st, res
	}
	cleanState, cleanRes := run(false)
	crashState, crashRes := run(true)
	if !bytes.Equal(normState(cleanState), normState(crashState)) {
		t.Fatal("bootstrap-from-batch state differs after crash+restart")
	}
	if cleanRes.Totals != crashRes.Totals {
		t.Fatalf("totals differ: %+v vs %+v", cleanRes.Totals, crashRes.Totals)
	}
}

// TestPoisonRetrySucceeds injects one refinement failure: the batch is
// retried from the committed model under an escalated budget and the
// final model must equal the clean run's (only the retry counter
// differs).
func TestPoisonRetrySucceeds(t *testing.T) {
	_, wantRes, _ := cleanRun(t, 1)
	dir := t.TempDir()
	var evs []Event
	cfg, _ := streamCfg(t, dir, 1, &evs)
	s := New(cfg)
	s.forcePoison = map[int64]int{2: 1}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.RetriedBatches != 1 || res.Totals.QuarantinedBatch != 0 {
		t.Fatalf("expected one retried batch: %+v", res.Totals)
	}
	norm := res.Totals
	norm.RetriedBatches = 0
	if norm != wantRes.Totals {
		t.Fatalf("retried run totals differ beyond the retry counter:\n  got:  %+v\n  want: %+v",
			norm, wantRes.Totals)
	}
	var retried *Event
	for i := range evs {
		if evs[i].Type == "batch" && evs[i].Seq == 2 {
			retried = &evs[i]
		}
	}
	if retried == nil || !retried.Retried || retried.Quarantined {
		t.Fatalf("batch 2 event not marked retried: %+v", retried)
	}
}

// TestPoisonQuarantine injects two failures: the batch is quarantined —
// its records advance the cursor, its refinement is skipped — and the
// stream continues, deterministically across crash/restart.
func TestPoisonQuarantine(t *testing.T) {
	run := func(crash bool) (*Result, []byte) {
		dir := t.TempDir()
		var evs []Event
		cfg, _ := streamCfg(t, dir, 1, &evs)
		s := New(cfg)
		s.forcePoison = map[int64]int{2: 2}
		if crash {
			s.crashHook = func(point string, seq int64) {
				if point == "between-batches" && seq == 2 {
					panic(crashSentinel{point: point, seq: seq})
				}
			}
			_, _, crashed := runMaybeCrash(context.Background(), s)
			if !crashed {
				t.Fatal("crash did not fire")
			}
			cfg2, _ := streamCfg(t, dir, 1, &evs)
			s = New(cfg2)
			// Batch 2 is already committed (quarantined); the poison map
			// is irrelevant on resume but kept identical for symmetry.
			s.forcePoison = map[int64]int{2: 2}
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		st, rerr := os.ReadFile(cfg.StatePath)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !crash {
			var q *Event
			for i := range evs {
				if evs[i].Type == "batch" && evs[i].Seq == 2 {
					q = &evs[i]
				}
			}
			if q == nil || !q.Quarantined || !q.Retried {
				t.Fatalf("batch 2 not marked quarantined+retried: %+v", q)
			}
			if q.Err == "" || q.Iterations != 0 {
				t.Fatalf("quarantined event malformed: %+v", q)
			}
		}
		return res, st
	}
	res, st := run(false)
	if res.Totals.QuarantinedBatch != 1 || res.Totals.RetriedBatches != 1 {
		t.Fatalf("expected quarantine: %+v", res.Totals)
	}
	resC, stC := run(true)
	if !bytes.Equal(normState(st), normState(stC)) {
		t.Fatal("quarantine run state differs across crash/restart")
	}
	if res.Totals != resC.Totals {
		t.Fatalf("quarantine totals differ: %+v vs %+v", res.Totals, resC.Totals)
	}
}

// TestResumeValidation: a resume with changed batch parameters, a
// different source, or a source that shrank or changed under the cursor
// is refused with a diagnostic instead of silently diverging.
func TestResumeValidation(t *testing.T) {
	dir := t.TempDir()
	cfg, n := streamCfg(t, dir, 1, nil)
	if _, err := New(cfg).Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// fresh rebuilds the configuration WITHOUT regenerating the updates
	// file, so the source mutations below survive.
	path := filepath.Join(dir, "updates.mrt")
	fresh := func() Config {
		return Config{
			Source:       NewFileSource(path, false, 0),
			StatePath:    cfg.StatePath,
			BatchRecords: cfg.BatchRecords,
			MinAge:       cfg.MinAge,
			Workers:      1,
			Bootstrap:    cfg.Bootstrap,
			Logf:         t.Logf,
		}
	}

	c := fresh()
	c.BatchRecords++
	if _, err := New(c).Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "-batch") {
		t.Fatalf("batch-records mismatch not refused: %v", err)
	}

	c = fresh()
	c.MinAge = 99
	if _, err := New(c).Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "-min-age") {
		t.Fatalf("min-age mismatch not refused: %v", err)
	}

	c = fresh()
	other := filepath.Join(dir, "other.mrt")
	if err := os.Link(filepath.Join(dir, "updates.mrt"), other); err != nil {
		t.Fatal(err)
	}
	c.Source = NewFileSource(other, false, 0)
	if _, err := New(c).Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "source") {
		t.Fatalf("source mismatch not refused: %v", err)
	}

	// Truncate the source below the cursor: recovery replay must fail.
	raw, err := os.ReadFile(filepath.Join(dir, "updates.mrt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "updates.mrt"), raw[:len(raw)/4], 0o644); err != nil {
		t.Fatal(err)
	}
	c = fresh()
	if _, err := New(c).Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "recovery replay") {
		t.Fatalf("short source not refused: %v", err)
	}
	_ = n

	// Rewrite the source with different timestamps (same record count):
	// the committed last-ts no longer matches the replay.
	f, err := os.Create(filepath.Join(dir, "updates.mrt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mrt.WriteUpdates(f, testDataset(t), 5000, 2); err != nil {
		t.Fatal(err)
	}
	f.Close()
	c = fresh()
	if _, err := New(c).Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "changed under the cursor") {
		t.Fatalf("content drift not refused: %v", err)
	}
}

// TestInterruptDrain cancels the context mid-stream: the run must
// return a *model.InterruptedError carrying the committed cursor, the
// in-flight batch must not be committed, and a restart must complete
// identically to a clean run.
func TestInterruptDrain(t *testing.T) {
	wantState, wantRes, _ := cleanRun(t, 1)
	dir := t.TempDir()
	cfg, _ := streamCfg(t, dir, 1, nil)

	ctx, cancel := context.WithCancel(context.Background())
	s := New(cfg)
	s.crashHook = func(point string, seq int64) {
		if point == "mid-batch" && seq == 2 {
			cancel()
		}
	}
	_, err := s.Run(ctx)
	var ierr *model.InterruptedError
	if err == nil || !asInterrupted(err, &ierr) {
		t.Fatalf("expected InterruptedError, got %v", err)
	}
	if ierr.Op != "stream" {
		t.Fatalf("Op = %q, want stream", ierr.Op)
	}
	if ierr.Iterations != 1 {
		t.Fatalf("interrupted after %d committed batches, want 1", ierr.Iterations)
	}
	if ierr.Checkpoint != cfg.StatePath {
		t.Fatalf("Checkpoint = %q", ierr.Checkpoint)
	}
	st, err := LoadStateFile(cfg.StatePath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cursor.Batches != 1 {
		t.Fatalf("in-flight batch was committed: cursor at batch %d", st.Cursor.Batches)
	}

	cfg2, _ := streamCfg(t, dir, 1, nil)
	res, rerr := New(cfg2).Run(context.Background())
	if rerr != nil {
		t.Fatal(rerr)
	}
	gotState, ferr := os.ReadFile(cfg.StatePath)
	if ferr != nil {
		t.Fatal(ferr)
	}
	if !bytes.Equal(normState(gotState), normState(wantState)) {
		t.Fatal("state after interrupt+resume differs from clean run")
	}
	if res.Totals != wantRes.Totals {
		t.Fatalf("totals differ: %+v vs %+v", res.Totals, wantRes.Totals)
	}
}

func asInterrupted(err error, out **model.InterruptedError) bool {
	for e := err; e != nil; {
		if ie, ok := e.(*model.InterruptedError); ok {
			*out = ie
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// TestMissingSourceFails pins the operational-vs-framing error split: a
// source that cannot be opened is a run failure, not an empty stream
// leniently ended at record zero.
func TestMissingSourceFails(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Source:    NewFileSource(filepath.Join(dir, "nope.mrt"), false, 0),
		StatePath: filepath.Join(dir, "stream.state"),
	}
	_, err := New(cfg).Run(context.Background())
	if err == nil {
		t.Fatal("missing source file ended the stream cleanly")
	}
	if !strings.Contains(err.Error(), "reading source") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, serr := os.Stat(cfg.StatePath); !os.IsNotExist(serr) {
		t.Fatal("failed run left a state file")
	}
}

// TestMaxBatches stops the run at the requested committed batch count
// and a follow-up run picks up exactly where it left off.
func TestMaxBatches(t *testing.T) {
	wantState, wantRes, _ := cleanRun(t, 1)
	dir := t.TempDir()
	cfg, _ := streamCfg(t, dir, 1, nil)
	cfg.MaxBatches = 2
	res, err := New(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 2 {
		t.Fatalf("stopped at batch %d, want 2", res.Batches)
	}
	cfg2, _ := streamCfg(t, dir, 1, nil)
	res2, err := New(cfg2).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Recovered {
		t.Fatal("second run did not resume")
	}
	gotState, err := os.ReadFile(cfg.StatePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normState(gotState), normState(wantState)) {
		t.Fatal("staged run state differs from clean run")
	}
	if res2.Totals != wantRes.Totals {
		t.Fatalf("totals differ: %+v vs %+v", res2.Totals, wantRes.Totals)
	}
}

// TestBakFallback corrupts the primary state file: LoadStateFile must
// fall back to the .bak (previous commit) and the resumed run must
// still converge to the clean final state — a .bak rewind re-runs at
// most one batch, it never double-applies one.
func TestBakFallback(t *testing.T) {
	wantState, wantRes, _ := cleanRun(t, 1)
	dir := t.TempDir()
	cfg, _ := streamCfg(t, dir, 1, nil)
	cfg.MaxBatches = 2
	if _, err := New(cfg).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Corrupt the primary mid-file (torn tail, header intact).
	raw, err := os.ReadFile(cfg.StatePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfg.StatePath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := LoadStateFile(cfg.StatePath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Source != cfg.StatePath+".bak" {
		t.Fatalf("loaded from %q, want .bak fallback", st.Source)
	}
	if st.Cursor.Batches != 1 {
		t.Fatalf(".bak holds batch %d, want previous commit 1", st.Cursor.Batches)
	}
	cfg2, _ := streamCfg(t, dir, 1, nil)
	res, err := New(cfg2).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gotState, err := os.ReadFile(cfg.StatePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normState(gotState), normState(wantState)) {
		t.Fatal("state after .bak rewind differs from clean run")
	}
	if res.Totals != wantRes.Totals {
		t.Fatalf("totals differ: %+v vs %+v", res.Totals, wantRes.Totals)
	}
}

// TestServeHandoff boots a prediction server directly off a stream
// state file: model.LoadCheckpoint reads the embedded checkpoint
// through the cursor header, so `asmodeld -checkpoint stream.state`
// serves the streamed model (Iteration = committed batch sequence).
func TestServeHandoff(t *testing.T) {
	dir := t.TempDir()
	cfg, _ := streamCfg(t, dir, 1, nil)
	res, err := New(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cp, err := model.LoadCheckpointFile(cfg.StatePath)
	if err != nil {
		t.Fatalf("checkpoint load from stream state: %v", err)
	}
	if int64(cp.Iteration) != res.Batches {
		t.Fatalf("checkpoint iteration %d, want batch seq %d", cp.Iteration, res.Batches)
	}

	ready := make(chan string, 1)
	srv := serve.New(serve.Config{
		CheckpointPath: cfg.StatePath,
		Addr:           "127.0.0.1:0",
		OnReady:        func(addr string) { ready <- addr },
		Logf:           t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	select {
	case <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	}
	snap := srv.Snapshot()
	if int64(snap.Iteration) != res.Batches {
		t.Fatalf("served iteration %d, want %d", snap.Iteration, res.Batches)
	}
	if snap.Model().Universe.Len() == 0 {
		t.Fatal("served model has an empty universe")
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestStateRoundtrip pins the state serialization: write → load →
// write reproduces identical bytes, and truncation at any directive
// boundary is detected.
func TestStateRoundtrip(t *testing.T) {
	dir := t.TempDir()
	cfg, _ := streamCfg(t, dir, 1, nil)
	cfg.MaxBatches = 1
	if _, err := New(cfg).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cfg.StatePath)
	if err != nil {
		t.Fatal(err)
	}
	st, err := LoadState(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteState(&buf, st); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatal("state roundtrip not byte-identical")
	}
	for _, cut := range []int{0, 10, len(raw) / 2, len(raw) - 2} {
		if _, err := LoadState(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

// --- Folded leading batches ----------------------------------------------

// writeJunkThenUpdates writes `junk` non-MESSAGE BGP4MP records (state
// changes, as real update feeds open with) followed by the fixture
// update stream. The replayer consumes but ignores the junk records, so
// a fresh run without a bootstrap dataset cannot build a model from the
// leading batches and must fold them forward.
func writeJunkThenUpdates(t testing.TB, dir string, junk int) (string, int) {
	t.Helper()
	path := filepath.Join(dir, "updates.mrt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := mrt.NewWriter(f)
	for i := 0; i < junk; i++ {
		// Subtype 0 = BGP4MP_STATE_CHANGE; Replayer.Apply ignores it.
		if err := w.WriteRecord(uint32(900+i), mrt.TypeBGP4MP, 0, make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := mrt.WriteUpdates(f, testDataset(t), 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, junk + n
}

// TestFoldedBatchCrashMatrix: a stream that begins with enough
// non-update records to fill whole batches. Without -bootstrap those
// batches cannot build a model, so they fold into the first real one;
// the absorbing commit must account every folded record exactly once —
// cursor, totals and batch event — and recovery from a crash at any
// scheduled point must still be byte-identical to an uninterrupted run.
func TestFoldedBatchCrashMatrix(t *testing.T) {
	const batch = 16
	const junk = 2 * batch
	run := func(point string, seq int64) ([]byte, *Result, []Event, int) {
		dir := t.TempDir()
		path, total := writeJunkThenUpdates(t, dir, junk)
		var evs []Event
		mkCfg := func() Config {
			return Config{
				Source:       NewFileSource(path, false, 0),
				StatePath:    filepath.Join(dir, "stream.state"),
				BatchRecords: batch,
				Workers:      2,
				Logf:         t.Logf,
				Observer:     func(ev Event) { evs = append(evs, ev) },
			}
		}
		if point != "" {
			s := New(mkCfg())
			s.crashHook = func(p string, q int64) {
				if p == point && q == seq {
					panic(crashSentinel{point: p, seq: q})
				}
			}
			_, _, crashed := runMaybeCrash(context.Background(), s)
			if !crashed {
				t.Fatalf("fault %s/%d did not fire", point, seq)
			}
		}
		res, err := New(mkCfg()).Run(context.Background())
		if err != nil {
			t.Fatalf("%s/%d: %v", point, seq, err)
		}
		st, err := os.ReadFile(filepath.Join(dir, "stream.state"))
		if err != nil {
			t.Fatal(err)
		}
		return st, res, batchEvents(evs), total
	}

	wantState, wantRes, wantEvs, total := run("", 0)
	if wantRes.Records != int64(total) {
		t.Fatalf("clean run committed %d of %d records", wantRes.Records, total)
	}
	if len(wantEvs) == 0 || wantEvs[0].Records != junk+batch {
		t.Fatalf("first batch should absorb the %d folded junk records: %+v", junk, wantEvs[0])
	}
	if wantEvs[0].Updates != batch || wantEvs[0].Announces != batch {
		t.Fatalf("folded records' replay accounting lost: %+v", wantEvs[0])
	}
	if !wantEvs[0].Bootstrap || wantEvs[0].Seq != 1 || wantEvs[0].CursorRecords != int64(junk+batch) {
		t.Fatalf("first batch malformed: %+v", wantEvs[0])
	}

	faults := []struct {
		point string
		seq   int64
	}{
		{"mid-batch", 1},   // during the junk prefix, nothing committed yet
		{"pre-commit", 1},  // after the folds, before the absorbing commit
		{"post-commit", 1}, // absorbing commit landed, baselines just reset
		{"between-batches", 1},
		{"pre-commit", 2},
	}
	for _, f := range faults {
		gotState, gotRes, _, _ := run(f.point, f.seq)
		if !bytes.Equal(normState(gotState), normState(wantState)) {
			t.Errorf("%s/%d: final state differs from clean run", f.point, f.seq)
		}
		if gotRes.Records != wantRes.Records || gotRes.Batches != wantRes.Batches ||
			gotRes.LastTS != wantRes.LastTS || gotRes.Totals != wantRes.Totals {
			t.Errorf("%s/%d: result differs:\n  got:  %+v\n  want: %+v", f.point, f.seq, *gotRes, *wantRes)
		}
	}
}

// --- -min-age age-in ------------------------------------------------------

// ageInStream writes a hand-timed single-peer update stream: P1
// (10.1.0.0/16) is announced once at ts 1000 and never touched again;
// two later waves of filler prefixes advance the stream clock. With
// -min-age 20 and -batch 4 the batches snapshot as:
//
//	batch 1 (ref 1007): all four prefixes unstable, delta empty
//	batch 2 (ref 1053): P1 aged in (stable at 1020) and is refined now
//	batch 3 (ref 1103): the batch-2 fillers aged in and are refined
//
// leaving the batch-3 fillers (stable at 1120..1123) pending in the
// final cursor.
func ageInStream(t testing.TB, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "updates.mrt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := mrt.NewWriter(f)
	local := netip.MustParseAddr("10.253.0.1")
	peer := netip.MustParseAddr("10.254.0.0")
	ann := func(ts uint32, nth int) {
		u := &mrt.Update{
			Attrs: &mrt.PathAttrs{
				Origin:   bgp.OriginIGP,
				Segments: mrt.SequencePath(bgp.Path{65001, bgp.ASN(100 + nth)}),
				NextHop:  peer,
			},
			NLRI: []netip.Prefix{netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", 1+nth))},
		}
		if err := w.WriteBGP4MPUpdate(ts, 65001, 65000, peer, local, u); err != nil {
			t.Fatal(err)
		}
	}
	ann(1000, 0) // P1, announced exactly once
	for i, ts := range []uint32{1005, 1006, 1007} {
		ann(ts, 1+i)
	}
	for i, ts := range []uint32{1050, 1051, 1052, 1053} {
		ann(ts, 1+i)
	}
	for i, ts := range []uint32{1100, 1101, 1102, 1103} {
		ann(ts, 5+i)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMinAgeAgeIn pins the -min-age liveness contract: a quiet prefix
// whose routes were too young at its batch's snapshot is kept pending
// (in the cursor, so crashes preserve it) and re-refined in the first
// batch after the stream passes its stability time — instead of being
// starved out of the model forever.
func TestMinAgeAgeIn(t *testing.T) {
	run := func(point string, seq int64) ([]byte, *Result, []Event) {
		dir := t.TempDir()
		path := ageInStream(t, dir)
		var evs []Event
		mkCfg := func() Config {
			return Config{
				Source:       NewFileSource(path, false, 0),
				StatePath:    filepath.Join(dir, "stream.state"),
				BatchRecords: 4,
				MinAge:       20,
				Workers:      1,
				Bootstrap:    bootstrapDataset(t, path),
				Logf:         t.Logf,
				Observer:     func(ev Event) { evs = append(evs, ev) },
			}
		}
		if point != "" {
			s := New(mkCfg())
			s.crashHook = func(p string, q int64) {
				if p == point && q == seq {
					panic(crashSentinel{point: p, seq: q})
				}
			}
			_, _, crashed := runMaybeCrash(context.Background(), s)
			if !crashed {
				t.Fatalf("fault %s/%d did not fire", point, seq)
			}
		}
		res, err := New(mkCfg()).Run(context.Background())
		if err != nil {
			t.Fatalf("%s/%d: %v", point, seq, err)
		}
		st, err := os.ReadFile(filepath.Join(dir, "stream.state"))
		if err != nil {
			t.Fatal(err)
		}
		return st, res, batchEvents(evs)
	}

	wantState, wantRes, wantEvs := run("", 0)
	if len(wantEvs) != 3 {
		t.Fatalf("want 3 batches, got %d: %+v", len(wantEvs), wantEvs)
	}
	for i, want := range []struct{ changed, refined int }{{4, 0}, {5, 1}, {8, 4}} {
		if wantEvs[i].Changed != want.changed || wantEvs[i].Refined != want.refined {
			t.Errorf("batch %d: changed=%d refined=%d, want %d/%d (aged-in prefixes must be re-refined)",
				i+1, wantEvs[i].Changed, wantEvs[i].Refined, want.changed, want.refined)
		}
	}

	// The final cursor carries the still-pending batch-3 fillers, and
	// the unstable lines survive a state round-trip byte-for-byte.
	st, err := LoadState(bytes.NewReader(wantState))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cursor.Unstable) != 4 {
		t.Fatalf("final cursor pending-unstable = %+v, want 4 entries", st.Cursor.Unstable)
	}
	for i, u := range st.Cursor.Unstable {
		if want := int64(1120 + i); u.StableAt != want {
			t.Errorf("unstable[%d] = %+v, want stable-at %d", i, u, want)
		}
	}
	var buf bytes.Buffer
	if err := WriteState(&buf, st); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), wantState) {
		t.Fatal("state with unstable entries does not round-trip byte-identically")
	}

	// Crash schedules: the pending set rides in the cursor, so recovery
	// re-includes aged-in prefixes at exactly the batch a clean run does.
	for _, f := range []struct {
		point string
		seq   int64
	}{{"between-batches", 1}, {"pre-commit", 2}, {"post-commit", 2}} {
		gotState, gotRes, _ := run(f.point, f.seq)
		if !bytes.Equal(normState(gotState), normState(wantState)) {
			t.Errorf("%s/%d: final state differs from clean run", f.point, f.seq)
		}
		if gotRes.Totals != wantRes.Totals {
			t.Errorf("%s/%d: totals differ:\n  got:  %+v\n  want: %+v", f.point, f.seq, gotRes.Totals, wantRes.Totals)
		}
	}
}
