package bgp

// This file implements the BGP decision process (paper §2, Figure 1) as a
// pure function over a set of candidate routes. The process is a sequence
// of elimination steps; the caller learns not only which route won but also
// at which step every other route was eliminated. The paper's "potential
// RIB-Out match" metric (§4.2) is exactly "eliminated at StepRouterID".

// Step identifies a stage of the BGP decision process.
type Step uint8

// Decision process steps in evaluation order.
const (
	// StepNone marks the winning route (it was never eliminated).
	StepNone Step = iota
	// StepLocalPref eliminates routes with lower local-preference.
	StepLocalPref
	// StepASPathLen eliminates routes with longer AS-paths.
	StepASPathLen
	// StepOrigin eliminates routes with a larger ORIGIN value.
	StepOrigin
	// StepMED eliminates routes with higher MED. Following §4.6 of the
	// paper, MEDs are always compared, including across neighbor ASes.
	StepMED
	// StepEBGP eliminates iBGP-learned routes when an eBGP route remains
	// (ground-truth router-level simulation only).
	StepEBGP
	// StepIGPCost eliminates routes with a more expensive intra-domain path
	// to the next hop — hot-potato routing (ground truth only).
	StepIGPCost
	// StepRouterID is the final tie-break: lowest announcing router ID
	// wins. Losing here and only here makes a route a "potential RIB-Out
	// match" in the paper's evaluation metrics.
	StepRouterID
)

// String names the step for reports.
func (s Step) String() string {
	switch s {
	case StepNone:
		return "best"
	case StepLocalPref:
		return "local-pref"
	case StepASPathLen:
		return "as-path-length"
	case StepOrigin:
		return "origin"
	case StepMED:
		return "med"
	case StepEBGP:
		return "ebgp-over-ibgp"
	case StepIGPCost:
		return "igp-cost"
	case StepRouterID:
		return "router-id"
	default:
		return "unknown-step"
	}
}

// DecisionConfig selects which optional steps the decision process runs.
// The quasi-router model (§4.6) uses neither the eBGP/iBGP step nor the IGP
// step: quasi-routers have no iBGP sessions and no intra-domain topology.
type DecisionConfig struct {
	// CompareOrigin enables the ORIGIN step. Off in the paper's model
	// (all routes carry the same origin); on in the ground truth.
	CompareOrigin bool
	// PreferEBGP enables the eBGP-over-iBGP step.
	PreferEBGP bool
	// CompareIGPCost enables the hot-potato IGP-cost step.
	CompareIGPCost bool
}

// QuasiRouterConfig is the decision configuration used by quasi-router
// models: local-pref, AS-path length, always-compare MED, router-ID.
var QuasiRouterConfig = DecisionConfig{}

// GroundTruthConfig is the decision configuration used by the router-level
// ground-truth simulation: the full process including hot-potato routing.
var GroundTruthConfig = DecisionConfig{CompareOrigin: true, PreferEBGP: true, CompareIGPCost: true}

// Decide runs the decision process over candidates and returns the index of
// the best route and, for each candidate, the step at which it was
// eliminated (StepNone for the winner). It returns best = -1 for an empty
// candidate set. The candidate order does not affect the outcome: every
// comparison is on totally ordered attributes ending in the unique
// router-ID tie-break (candidates must have distinct Peer IDs, which holds
// by construction since a RIB holds at most one route per session).
//
// The elim slice is appended to elimBuf to let hot paths avoid allocation;
// pass nil if you do not care.
func Decide(cfg DecisionConfig, candidates []*Route, elimBuf []Step) (best int, elim []Step) {
	if elimBuf != nil {
		elim = elimBuf[:0]
		for range candidates {
			elim = append(elim, StepNone)
		}
	} else {
		elim = make([]Step, len(candidates))
	}
	if len(candidates) == 0 {
		return -1, elim
	}

	// alive tracks indices still in contention. Small fixed-size stack
	// buffer covers the common case of few candidates.
	var aliveBuf [16]int
	alive := aliveBuf[:0]
	for i := range candidates {
		alive = append(alive, i)
	}

	// eliminate keeps only candidates for which keep() is true, marking the
	// rest with the given step. keep must be true for at least one alive
	// candidate.
	eliminate := func(step Step, keep func(r *Route) bool) {
		if len(alive) == 1 {
			return
		}
		out := alive[:0]
		for _, i := range alive {
			if keep(candidates[i]) {
				out = append(out, i)
			} else {
				elim[i] = step
			}
		}
		alive = out
	}

	// 1. Highest local-pref.
	maxLP := uint32(0)
	for _, i := range alive {
		if lp := candidates[i].LocalPref; lp > maxLP {
			maxLP = lp
		}
	}
	eliminate(StepLocalPref, func(r *Route) bool { return r.LocalPref == maxLP })

	// 2. Shortest AS-path.
	minLen := int(^uint(0) >> 1)
	for _, i := range alive {
		if l := len(candidates[i].Path); l < minLen {
			minLen = l
		}
	}
	eliminate(StepASPathLen, func(r *Route) bool { return len(r.Path) == minLen })

	// 3. Lowest origin.
	if cfg.CompareOrigin {
		minOrigin := Origin(255)
		for _, i := range alive {
			if o := candidates[i].Origin; o < minOrigin {
				minOrigin = o
			}
		}
		eliminate(StepOrigin, func(r *Route) bool { return r.Origin == minOrigin })
	}

	// 4. Lowest MED, always compared (§4.6).
	minMED := ^uint32(0)
	for _, i := range alive {
		if m := candidates[i].MED; m < minMED {
			minMED = m
		}
	}
	eliminate(StepMED, func(r *Route) bool { return r.MED == minMED })

	// 5. Prefer eBGP-learned routes over iBGP-learned ones.
	if cfg.PreferEBGP {
		anyEBGP := false
		for _, i := range alive {
			if candidates[i].EBGP {
				anyEBGP = true
				break
			}
		}
		if anyEBGP {
			eliminate(StepEBGP, func(r *Route) bool { return r.EBGP })
		}
	}

	// 6. Lowest IGP cost to next hop (hot potato).
	if cfg.CompareIGPCost {
		minCost := ^uint32(0)
		for _, i := range alive {
			if c := candidates[i].IGPCost; c < minCost {
				minCost = c
			}
		}
		eliminate(StepIGPCost, func(r *Route) bool { return r.IGPCost == minCost })
	}

	// 7. Lowest announcing router ID.
	minPeer := ^RouterID(0)
	for _, i := range alive {
		if p := candidates[i].Peer; p < minPeer {
			minPeer = p
		}
	}
	eliminate(StepRouterID, func(r *Route) bool { return r.Peer == minPeer })

	return alive[0], elim
}

// Better reports whether route a is strictly preferred over route b under
// cfg. It is a convenience wrapper over Decide for two candidates.
func Better(cfg DecisionConfig, a, b *Route) bool {
	best, _ := Decide(cfg, []*Route{a, b}, nil)
	return best == 0
}
