package bgp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func route(opts ...func(*Route)) *Route {
	r := &Route{LocalPref: DefaultLocalPref, MED: DefaultMED, Path: Path{1, 2}, Peer: MakeRouterID(1, 0), EBGP: true}
	for _, o := range opts {
		o(r)
	}
	return r
}

func withLP(v uint32) func(*Route)   { return func(r *Route) { r.LocalPref = v } }
func withMED(v uint32) func(*Route)  { return func(r *Route) { r.MED = v } }
func withPath(p ...ASN) func(*Route) { return func(r *Route) { r.Path = Path(p) } }
func withPeer(id RouterID) func(*Route) {
	return func(r *Route) { r.Peer = id }
}
func withIGP(c uint32) func(*Route)    { return func(r *Route) { r.IGPCost = c } }
func withEBGP(b bool) func(*Route)     { return func(r *Route) { r.EBGP = b } }
func withOrigin(o Origin) func(*Route) { return func(r *Route) { r.Origin = o } }

func TestDecideEmpty(t *testing.T) {
	best, elim := Decide(QuasiRouterConfig, nil, nil)
	if best != -1 || len(elim) != 0 {
		t.Fatalf("empty: best=%d elim=%v", best, elim)
	}
}

func TestDecideSingle(t *testing.T) {
	r := route()
	best, elim := Decide(QuasiRouterConfig, []*Route{r}, nil)
	if best != 0 || elim[0] != StepNone {
		t.Fatalf("single: best=%d elim=%v", best, elim)
	}
}

func TestDecideLocalPref(t *testing.T) {
	a := route(withLP(200), withPath(1, 2, 3, 4), withPeer(MakeRouterID(9, 9)))
	b := route(withLP(100), withPath(1), withPeer(MakeRouterID(1, 0)))
	best, elim := Decide(QuasiRouterConfig, []*Route{a, b}, nil)
	if best != 0 {
		t.Fatalf("higher local-pref should win despite longer path; best=%d", best)
	}
	if elim[1] != StepLocalPref {
		t.Fatalf("loser should be eliminated at local-pref, got %v", elim[1])
	}
}

func TestDecideASPathLen(t *testing.T) {
	a := route(withPath(1, 2), withPeer(MakeRouterID(9, 9)))
	b := route(withPath(1, 2, 3), withPeer(MakeRouterID(1, 0)))
	best, elim := Decide(QuasiRouterConfig, []*Route{a, b}, nil)
	if best != 0 || elim[1] != StepASPathLen {
		t.Fatalf("best=%d elim=%v", best, elim)
	}
}

func TestDecideMEDAlwaysCompared(t *testing.T) {
	// Same path length, different neighbor ASes: paper §4.6 requires MED to
	// be compared anyway ("even for routes learned from different neighbor
	// ASes").
	a := route(withPath(10, 2), withMED(50), withPeer(MakeRouterID(10, 0)))
	b := route(withPath(20, 2), withMED(10), withPeer(MakeRouterID(1, 0)))
	best, elim := Decide(QuasiRouterConfig, []*Route{a, b}, nil)
	if best != 1 || elim[0] != StepMED {
		t.Fatalf("lower MED should win across neighbors: best=%d elim=%v", best, elim)
	}
}

func TestDecideRouterIDTieBreak(t *testing.T) {
	a := route(withPath(10, 2), withPeer(MakeRouterID(10, 1)))
	b := route(withPath(20, 2), withPeer(MakeRouterID(10, 0)))
	best, elim := Decide(QuasiRouterConfig, []*Route{a, b}, nil)
	if best != 1 {
		t.Fatalf("lowest router ID should win, best=%d", best)
	}
	if elim[0] != StepRouterID {
		t.Fatalf("loser should be a potential RIB-Out match (router-id step), got %v", elim[0])
	}
}

func TestDecideOriginStep(t *testing.T) {
	a := route(withOrigin(OriginIncomplete), withPeer(MakeRouterID(1, 0)))
	b := route(withOrigin(OriginIGP), withPeer(MakeRouterID(2, 0)))
	// Quasi-router config ignores origin: a wins on router ID.
	best, _ := Decide(QuasiRouterConfig, []*Route{a, b}, nil)
	if best != 0 {
		t.Fatalf("quasi config should ignore origin, best=%d", best)
	}
	// Ground-truth config compares origin: b wins.
	best, elim := Decide(GroundTruthConfig, []*Route{a, b}, nil)
	if best != 1 || elim[0] != StepOrigin {
		t.Fatalf("ground truth: best=%d elim=%v", best, elim)
	}
}

func TestDecideEBGPOverIBGP(t *testing.T) {
	a := route(withEBGP(false), withPeer(MakeRouterID(1, 0)))
	b := route(withEBGP(true), withPeer(MakeRouterID(2, 0)))
	best, elim := Decide(GroundTruthConfig, []*Route{a, b}, nil)
	if best != 1 || elim[0] != StepEBGP {
		t.Fatalf("eBGP should beat iBGP: best=%d elim=%v", best, elim)
	}
	// All-iBGP candidate sets skip the step entirely.
	c := route(withEBGP(false), withPeer(MakeRouterID(1, 0)))
	d := route(withEBGP(false), withPeer(MakeRouterID(2, 0)))
	best, elim = Decide(GroundTruthConfig, []*Route{c, d}, nil)
	if best != 0 || elim[1] != StepRouterID {
		t.Fatalf("all-iBGP: best=%d elim=%v", best, elim)
	}
}

func TestDecideIGPCostHotPotato(t *testing.T) {
	a := route(withIGP(30), withPeer(MakeRouterID(1, 0)))
	b := route(withIGP(10), withPeer(MakeRouterID(2, 0)))
	best, elim := Decide(GroundTruthConfig, []*Route{a, b}, nil)
	if best != 1 || elim[0] != StepIGPCost {
		t.Fatalf("hot potato: best=%d elim=%v", best, elim)
	}
	// Quasi-router config ignores IGP cost.
	best, _ = Decide(QuasiRouterConfig, []*Route{a, b}, nil)
	if best != 0 {
		t.Fatalf("quasi config should ignore IGP cost, best=%d", best)
	}
}

func TestDecideStepPrecedence(t *testing.T) {
	// Construct four routes, each designed to lose at a different step.
	best := route(withLP(200), withPath(1, 2), withMED(0), withPeer(MakeRouterID(1, 0)))
	loseLP := route(withLP(100), withPath(1), withMED(0), withPeer(MakeRouterID(0, 1)))
	loseLen := route(withLP(200), withPath(1, 2, 3), withMED(0), withPeer(MakeRouterID(0, 2)))
	loseMED := route(withLP(200), withPath(1, 2), withMED(5), withPeer(MakeRouterID(0, 3)))
	loseID := route(withLP(200), withPath(1, 2), withMED(0), withPeer(MakeRouterID(1, 1)))
	cands := []*Route{loseLP, loseLen, loseMED, loseID, best}
	got, elim := Decide(QuasiRouterConfig, cands, nil)
	if got != 4 {
		t.Fatalf("best=%d", got)
	}
	want := []Step{StepLocalPref, StepASPathLen, StepMED, StepRouterID, StepNone}
	for i, w := range want {
		if elim[i] != w {
			t.Errorf("candidate %d eliminated at %v, want %v", i, elim[i], w)
		}
	}
}

func TestDecideOrderInvariance(t *testing.T) {
	// The winner and elimination steps must not depend on candidate order.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		cands := make([]*Route, n)
		for i := range cands {
			pathLen := 1 + rng.Intn(3)
			p := make(Path, pathLen)
			for j := range p {
				p[j] = ASN(1 + rng.Intn(5))
			}
			cands[i] = &Route{
				LocalPref: uint32(100 + 10*rng.Intn(3)),
				MED:       uint32(rng.Intn(3) * 50),
				Path:      p,
				Peer:      MakeRouterID(ASN(rng.Intn(100)), uint16(i)), // unique peer per candidate
				EBGP:      rng.Intn(2) == 0,
				IGPCost:   uint32(rng.Intn(4)),
				Origin:    Origin(rng.Intn(3)),
			}
		}
		// Ensure unique peers (RIB invariant).
		seen := map[RouterID]bool{}
		unique := true
		for _, c := range cands {
			if seen[c.Peer] {
				unique = false
			}
			seen[c.Peer] = true
		}
		if !unique {
			continue
		}
		base, _ := Decide(GroundTruthConfig, cands, nil)
		baseRoute := cands[base]
		perm := rng.Perm(n)
		shuffled := make([]*Route, n)
		for i, j := range perm {
			shuffled[i] = cands[j]
		}
		got, _ := Decide(GroundTruthConfig, shuffled, nil)
		if shuffled[got] != baseRoute {
			t.Fatalf("trial %d: order changed winner: %v vs %v", trial, shuffled[got], baseRoute)
		}
	}
}

func TestDecideWinnerDominatesProperty(t *testing.T) {
	// Property: the winner, compared pairwise against any other candidate,
	// also wins (the decision process is a total order on distinct peers).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		cands := make([]*Route, n)
		for i := range cands {
			p := make(Path, 1+rng.Intn(4))
			for j := range p {
				p[j] = ASN(1 + rng.Intn(9))
			}
			cands[i] = &Route{
				LocalPref: uint32(90 + rng.Intn(3)*10),
				MED:       uint32(rng.Intn(2) * 100),
				Path:      p,
				Peer:      MakeRouterID(ASN(rng.Intn(50)), uint16(i)),
			}
		}
		best, _ := Decide(QuasiRouterConfig, cands, nil)
		for i, c := range cands {
			if i == best {
				continue
			}
			if !Better(QuasiRouterConfig, cands[best], c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecideElimBufReuse(t *testing.T) {
	cands := []*Route{route(withPeer(MakeRouterID(1, 0))), route(withPeer(MakeRouterID(1, 1)))}
	buf := make([]Step, 0, 8)
	best, elim := Decide(QuasiRouterConfig, cands, buf)
	if best != 0 {
		t.Fatalf("best=%d", best)
	}
	if cap(elim) != cap(buf) {
		t.Fatal("elim should reuse the provided buffer")
	}
}

func TestStepString(t *testing.T) {
	steps := []Step{StepNone, StepLocalPref, StepASPathLen, StepOrigin, StepMED, StepEBGP, StepIGPCost, StepRouterID, Step(99)}
	for _, s := range steps {
		if s.String() == "" {
			t.Errorf("empty string for step %d", s)
		}
	}
}

func BenchmarkDecide8(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	cands := make([]*Route, 8)
	for i := range cands {
		p := make(Path, 1+rng.Intn(5))
		for j := range p {
			p[j] = ASN(rng.Intn(1000))
		}
		cands[i] = &Route{LocalPref: 100, MED: uint32(rng.Intn(2) * 100), Path: p, Peer: MakeRouterID(ASN(i), 0)}
	}
	buf := make([]Step, 0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Decide(QuasiRouterConfig, cands, buf)
	}
}
