package bgp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParsePath(t *testing.T) {
	tests := []struct {
		in      string
		want    Path
		wantErr bool
	}{
		{"", Path{}, false},
		{"   ", Path{}, false},
		{"701", Path{701}, false},
		{"701 1239 24249", Path{701, 1239, 24249}, false},
		{"  701   1239 ", Path{701, 1239}, false},
		{"701 x 1239", nil, true},
		{"-1", nil, true},
		{"4294967295", Path{4294967295}, false},
		{"4294967296", nil, true},
	}
	for _, tt := range tests {
		got, err := ParsePath(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParsePath(%q) err=%v wantErr=%v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && !got.Equal(tt.want) {
			t.Errorf("ParsePath(%q)=%v want %v", tt.in, got, tt.want)
		}
	}
}

func TestPathStringRoundTrip(t *testing.T) {
	p := Path{3356, 1239, 24249}
	got, err := ParsePath(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Fatalf("round trip %v -> %q -> %v", p, p.String(), got)
	}
	if (Path{}).String() != "" {
		t.Fatalf("empty path should render empty, got %q", Path{}.String())
	}
}

func TestPathOriginFirst(t *testing.T) {
	p := Path{1, 2, 3}
	if o, ok := p.Origin(); !ok || o != 3 {
		t.Errorf("Origin() = %v, %v", o, ok)
	}
	if f, ok := p.First(); !ok || f != 1 {
		t.Errorf("First() = %v, %v", f, ok)
	}
	empty := Path{}
	if _, ok := empty.Origin(); ok {
		t.Error("empty path Origin should report !ok")
	}
	if _, ok := empty.First(); ok {
		t.Error("empty path First should report !ok")
	}
}

func TestPathPrepend(t *testing.T) {
	p := Path{2, 3}
	q := p.Prepend(1)
	if !q.Equal(Path{1, 2, 3}) {
		t.Fatalf("Prepend got %v", q)
	}
	// Original must be unchanged (immutability contract).
	if !p.Equal(Path{2, 3}) {
		t.Fatalf("Prepend mutated receiver: %v", p)
	}
}

func TestPathStripPrepend(t *testing.T) {
	tests := []struct {
		in, want Path
	}{
		{Path{}, Path{}},
		{Path{1}, Path{1}},
		{Path{1, 1, 1}, Path{1}},
		{Path{1, 1, 2, 3, 3, 3, 4}, Path{1, 2, 3, 4}},
		{Path{1, 2, 1}, Path{1, 2, 1}}, // non-adjacent repeats stay (loop)
	}
	for _, tt := range tests {
		if got := tt.in.StripPrepend(); !got.Equal(tt.want) {
			t.Errorf("StripPrepend(%v)=%v want %v", tt.in, got, tt.want)
		}
	}
}

func TestPathHasLoop(t *testing.T) {
	tests := []struct {
		in   Path
		want bool
	}{
		{Path{}, false},
		{Path{1}, false},
		{Path{1, 2, 3}, false},
		{Path{1, 1, 2}, false},    // prepending is not a loop
		{Path{1, 2, 1}, true},     // true loop
		{Path{1, 2, 2, 1}, true},  // prepending plus loop
		{Path{5, 5, 5, 5}, false}, // pure prepending
	}
	for _, tt := range tests {
		if got := tt.in.HasLoop(); got != tt.want {
			t.Errorf("HasLoop(%v)=%v want %v", tt.in, got, tt.want)
		}
	}
}

func TestPathSuffix(t *testing.T) {
	p := Path{1, 2, 3, 4}
	if got := p.Suffix(2); !got.Equal(Path{3, 4}) {
		t.Errorf("Suffix(2)=%v", got)
	}
	if got := p.Suffix(0); len(got) != 0 {
		t.Errorf("Suffix(0)=%v", got)
	}
	if got := p.Suffix(4); !got.Equal(p) {
		t.Errorf("Suffix(len)=%v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Suffix(5) should panic")
		}
	}()
	p.Suffix(5)
}

func TestPathKeyRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		p := make(Path, len(raw))
		for i, v := range raw {
			p[i] = ASN(v)
		}
		k := p.Key()
		if k.Len() != len(p) {
			return false
		}
		return k.Decode().Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathKeyUniqueness(t *testing.T) {
	// Distinct paths must map to distinct keys; in particular length must be
	// encoded, so [1,2] and [1] differ and [0x0102] vs [0x01,0x02] differ.
	a := Path{1, 2}
	b := Path{1}
	c := Path{0x00010002}
	keys := map[PathKey]Path{a.Key(): a, b.Key(): b, c.Key(): c}
	if len(keys) != 3 {
		t.Fatalf("key collision among %v %v %v", a, b, c)
	}
}

func TestRouterID(t *testing.T) {
	id := MakeRouterID(3356, 7)
	if id.AS() != 3356 {
		t.Errorf("AS() = %v", id.AS())
	}
	if id.Index() != 7 {
		t.Errorf("Index() = %v", id.Index())
	}
	if id.String() != "3356.7" {
		t.Errorf("String() = %q", id.String())
	}
	// IDs are ordered first by ASN, then by index.
	if !(MakeRouterID(100, 65535) < MakeRouterID(101, 0)) {
		t.Error("RouterID ordering should be ASN-major")
	}
	if !(MakeRouterID(100, 1) < MakeRouterID(100, 2)) {
		t.Error("RouterID ordering should be index-minor")
	}
}

func TestRouterIDOrderingProperty(t *testing.T) {
	f := func(a1, a2 uint16, i1, i2 uint16) bool {
		r1 := MakeRouterID(ASN(a1), i1)
		r2 := MakeRouterID(ASN(a2), i2)
		want := a1 < a2 || (a1 == a2 && i1 < i2)
		return (r1 < r2) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathCloneIndependence(t *testing.T) {
	p := Path{1, 2, 3}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("Clone did not copy")
	}
	if (Path)(nil).Clone() != nil {
		t.Fatal("Clone(nil) should be nil")
	}
}

func TestRouteClone(t *testing.T) {
	r := &Route{Prefix: 3, Path: Path{1, 2}, LocalPref: 50, MED: 7, Peer: MakeRouterID(1, 0)}
	c := r.Clone()
	c.MED = 99
	if r.MED != 7 {
		t.Fatal("Clone shares mutable state")
	}
	if !c.Path.Equal(r.Path) {
		t.Fatal("Clone should share path contents")
	}
}

func TestSortASNs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	asns := make([]ASN, 100)
	for i := range asns {
		asns[i] = ASN(rng.Uint32())
	}
	SortASNs(asns)
	for i := 1; i < len(asns); i++ {
		if asns[i-1] > asns[i] {
			t.Fatal("not sorted")
		}
	}
}

func TestStripPrependIdempotent(t *testing.T) {
	f := func(raw []uint8) bool {
		p := make(Path, len(raw))
		for i, v := range raw {
			p[i] = ASN(v % 4) // small alphabet to force repeats
		}
		once := p.StripPrepend()
		twice := once.StripPrepend()
		return once.Equal(twice)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStripPrependNoAdjacentDuplicates(t *testing.T) {
	f := func(raw []uint8) bool {
		p := make(Path, len(raw))
		for i, v := range raw {
			p[i] = ASN(v % 3)
		}
		s := p.StripPrepend()
		for i := 1; i < len(s); i++ {
			if s[i] == s[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOriginString(t *testing.T) {
	if OriginIGP.String() != "IGP" || OriginEGP.String() != "EGP" || OriginIncomplete.String() != "INCOMPLETE" {
		t.Error("origin strings wrong")
	}
	if Origin(9).String() != "Origin(9)" {
		t.Errorf("unknown origin: %q", Origin(9).String())
	}
}

func TestRouteString(t *testing.T) {
	var r *Route
	if r.String() != "<nil route>" {
		t.Error("nil route string")
	}
	r = &Route{Prefix: 1, Path: Path{2, 3}}
	if r.String() == "" {
		t.Error("empty route string")
	}
}

func TestPathEqualReflectConsistency(t *testing.T) {
	f := func(a, b []uint32) bool {
		pa := make(Path, len(a))
		for i, v := range a {
			pa[i] = ASN(v)
		}
		pb := make(Path, len(b))
		for i, v := range b {
			pb[i] = ASN(v)
		}
		return pa.Equal(pb) == reflect.DeepEqual([]ASN(pa), []ASN(pb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
