// Package bgp provides the core BGP data types shared by every other
// package in this repository: AS numbers, prefixes, AS-paths, routes, and
// the BGP decision process.
//
// The types model the subset of BGP-4 (RFC 4271) that matters for static,
// converged route propagation as used by the AS-routing model of
// Mühlbauer et al., "Building an AS-topology model that captures route
// diversity" (SIGCOMM 2006): path attributes that participate in the
// decision process, AS-path manipulation (prepend stripping, loop
// detection, suffix logic), and a decision process that records the
// elimination step of every losing route so that callers can distinguish a
// route that lost only in the final router-ID tie-break (a "potential
// RIB-Out match" in the paper's terminology) from one that lost earlier.
package bgp

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ASN is an autonomous system number. The 2005-era datasets the paper uses
// are 16-bit, but the type is 32-bit so that the MRT codec can handle
// AS4_PATH attributes (RFC 6793) without loss.
type ASN uint32

// String returns the decimal representation of the ASN ("AS3356" style is
// deliberately avoided: datasets and paper figures use bare numbers).
func (a ASN) String() string { return strconv.FormatUint(uint64(a), 10) }

// RouterID identifies a (quasi-)router. Following §4.5 of the paper, the
// high-order 16 bits carry the AS number and the low-order bits a unique
// per-AS index, so that comparing router IDs implements the paper's
// "lowest IP address" tie-break deterministically.
type RouterID uint32

// MakeRouterID builds a RouterID from an AS number and a per-AS index.
// AS numbers above 16 bits are folded (XOR) into the high half; the paper's
// datasets predate 32-bit ASNs so in practice asn fits.
func MakeRouterID(asn ASN, index uint16) RouterID {
	hi := uint32(asn&0xffff) ^ uint32(asn>>16)
	return RouterID(hi<<16 | uint32(index))
}

// AS returns the AS number encoded in the router ID.
func (r RouterID) AS() ASN { return ASN(uint32(r) >> 16) }

// Index returns the per-AS index encoded in the router ID.
func (r RouterID) Index() uint16 { return uint16(uint32(r) & 0xffff) }

// String renders the router ID as "AS.index", e.g. "3356.2".
func (r RouterID) String() string {
	return strconv.FormatUint(uint64(r.AS()), 10) + "." + strconv.FormatUint(uint64(r.Index()), 10)
}

// Origin is the BGP ORIGIN attribute.
type Origin uint8

// Origin attribute values (RFC 4271 §4.3).
const (
	OriginIGP        Origin = 0
	OriginEGP        Origin = 1
	OriginIncomplete Origin = 2
)

func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "IGP"
	case OriginEGP:
		return "EGP"
	case OriginIncomplete:
		return "INCOMPLETE"
	default:
		return "Origin(" + strconv.Itoa(int(o)) + ")"
	}
}

// Path is an AS-path: the sequence of ASes a route traversed, most recent
// AS first (index 0 is the neighbor that announced the route, the last
// element is the origin AS). A nil or empty Path denotes a locally
// originated route.
//
// Paths are treated as immutable: every operation returns a fresh slice and
// callers must not mutate a Path after sharing it.
type Path []ASN

// ParsePath parses a space-separated AS-path such as "701 1239 24249".
// An empty string yields an empty (locally originated) path.
func ParsePath(s string) (Path, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Path{}, nil
	}
	fields := strings.Fields(s)
	p := make(Path, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bgp: invalid ASN %q in path %q: %w", f, s, err)
		}
		p[i] = ASN(v)
	}
	return p, nil
}

// String renders the path as space-separated AS numbers, neighbor first.
func (p Path) String() string {
	if len(p) == 0 {
		return ""
	}
	var b strings.Builder
	for i, a := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// Origin returns the originating AS (last element) and true, or 0 and false
// for an empty path.
func (p Path) Origin() (ASN, bool) {
	if len(p) == 0 {
		return 0, false
	}
	return p[len(p)-1], true
}

// First returns the first AS on the path (the announcing neighbor) and
// true, or 0 and false for an empty path.
func (p Path) First() (ASN, bool) {
	if len(p) == 0 {
		return 0, false
	}
	return p[0], true
}

// Prepend returns a new path with asn prepended, as performed by a router
// exporting a route over an eBGP session.
func (p Path) Prepend(asn ASN) Path {
	q := make(Path, 0, len(p)+1)
	q = append(q, asn)
	q = append(q, p...)
	return q
}

// Clone returns an independent copy of the path.
func (p Path) Clone() Path {
	if p == nil {
		return nil
	}
	q := make(Path, len(p))
	copy(q, p)
	return q
}

// Equal reports whether two paths are element-wise identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// StripPrepend collapses consecutive duplicate ASNs, removing AS-path
// prepending. The paper removes prepending "to prevent distraction from the
// task of route propagation" (§3.1, footnote 1).
func (p Path) StripPrepend() Path {
	if len(p) == 0 {
		return Path{}
	}
	q := make(Path, 0, len(p))
	for i, a := range p {
		if i == 0 || a != p[i-1] {
			q = append(q, a)
		}
	}
	return q
}

// HasLoop reports whether any AS appears more than once after prepending is
// stripped. Looped paths are removed from the AS-topology in §3.1.
func (p Path) HasLoop() bool {
	if len(p) <= 1 {
		return false
	}
	seen := make(map[ASN]struct{}, len(p))
	stripped := p.StripPrepend()
	for _, a := range stripped {
		if _, dup := seen[a]; dup {
			return true
		}
		seen[a] = struct{}{}
	}
	return false
}

// Contains reports whether asn appears anywhere on the path. Routers use
// this for the standard eBGP loop check on import.
func (p Path) Contains(asn ASN) bool {
	for _, a := range p {
		if a == asn {
			return true
		}
	}
	return false
}

// Suffix returns the last n elements of the path (the n hops closest to the
// origin). Suffix(len(p)) is the whole path; Suffix(0) is empty.
// It panics if n is negative or exceeds the path length.
func (p Path) Suffix(n int) Path {
	if n < 0 || n > len(p) {
		panic("bgp: Path.Suffix out of range")
	}
	return p[len(p)-n:]
}

// Key returns a compact map key uniquely identifying the path contents.
// Keys are comparable and hashable; they are not human-readable.
func (p Path) Key() PathKey {
	b := make([]byte, 4*len(p))
	for i, a := range p {
		binary.BigEndian.PutUint32(b[4*i:], uint32(a))
	}
	return PathKey(b)
}

// PathKey is an opaque, comparable encoding of a Path, suitable as a map
// key. Obtain one with Path.Key; decode with Decode.
type PathKey string

// Decode converts the key back into a Path.
func (k PathKey) Decode() Path {
	if len(k)%4 != 0 {
		panic("bgp: corrupt PathKey")
	}
	p := make(Path, len(k)/4)
	for i := range p {
		p[i] = ASN(binary.BigEndian.Uint32([]byte(k[4*i : 4*i+4])))
	}
	return p
}

// Len returns the number of ASes encoded in the key without decoding it.
func (k PathKey) Len() int { return len(k) / 4 }

// Route is a BGP route for a prefix together with the attributes that
// participate in the decision process. Routes are immutable once published
// to a RIB; policy application copies before modifying.
type Route struct {
	// Prefix is a dense index identifying the destination prefix within a
	// simulation (the paper originates one prefix per AS, §4.1). Mapping to
	// real CIDR prefixes, where needed, lives in the dataset layer.
	Prefix PrefixID

	// Path is the AS-path as received (neighbor first, origin last). Empty
	// for locally originated routes.
	Path Path

	// LocalPref is the local-preference attribute; higher wins. The
	// refinement heuristic never sets it (§4.6) but baselines (valley-free
	// policies) and the ablation experiments do.
	LocalPref uint32

	// MED is the multi-exit discriminator; lower wins, and following §4.6
	// the decision process always compares MEDs, even across neighbor ASes.
	MED uint32

	// Origin is the ORIGIN attribute (lower wins).
	Origin Origin

	// Peer is the router ID of the (quasi-)router that announced this
	// route; the final tie-break prefers the lowest announcing router ID.
	// Zero for locally originated routes.
	Peer RouterID

	// IGPCost is the cost of the intra-domain path to the BGP next hop,
	// used for hot-potato routing in the ground-truth router-level
	// simulation. Zero in quasi-router models (no iBGP, §4.6).
	IGPCost uint32

	// EBGP reports whether the route was learned over an eBGP session.
	// Locally originated routes have EBGP=false; so do iBGP-learned routes
	// in the ground-truth simulation.
	EBGP bool
}

// PrefixID is a dense prefix identifier within one simulation universe.
type PrefixID int32

// DefaultLocalPref is the local-preference assigned when no policy sets one
// (Cisco/Juniper default).
const DefaultLocalPref = 100

// DefaultMED is the MED assigned when no policy sets one. The refinement
// heuristic prefers a route by lowering its MED below this value.
const DefaultMED = 100

// Clone returns a copy of the route sharing the (immutable) path.
func (r *Route) Clone() *Route {
	c := *r
	return &c
}

// String renders the route for debugging and logs.
func (r *Route) String() string {
	if r == nil {
		return "<nil route>"
	}
	return fmt.Sprintf("prefix=%d path=[%s] lp=%d med=%d peer=%s", r.Prefix, r.Path, r.LocalPref, r.MED, r.Peer)
}

// SortASNs sorts a slice of ASNs ascending, in place, and returns it.
// Shared helper for deterministic iteration over AS sets.
func SortASNs(asns []ASN) []ASN {
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	return asns
}
