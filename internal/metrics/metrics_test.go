package metrics

import (
	"strings"
	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/sim"
)

// diamond builds the tie-break scenario: origin AS4 reachable from AS1 via
// AS2 (wins tie-break) and AS3 (loses tie-break).
func diamond(t *testing.T) (*sim.Network, *Classifier) {
	t.Helper()
	net := sim.NewNetwork(bgp.QuasiRouterConfig)
	r1, _ := net.AddRouter(1, 0)
	r2, _ := net.AddRouter(2, 0)
	r3, _ := net.AddRouter(3, 0)
	r4, _ := net.AddRouter(4, 0)
	net.Connect(r1, r2)
	net.Connect(r1, r3)
	net.Connect(r2, r4)
	net.Connect(r3, r4)
	if err := net.Run(1, []bgp.RouterID{r4.ID}); err != nil {
		t.Fatal(err)
	}
	return net, NewClassifier(net)
}

func TestClassifyKinds(t *testing.T) {
	_, c := diamond(t)
	tests := []struct {
		path bgp.Path
		want MatchKind
	}{
		{bgp.Path{1, 2, 4}, RIBOut},          // the selected route
		{bgp.Path{1, 3, 4}, PotentialRIBOut}, // lost only the tie-break
		{bgp.Path{1, 2, 3, 4}, NoRIBIn},      // never propagated
		{bgp.Path{9, 4}, NoRIBIn},            // unknown observing AS
		{bgp.Path{4}, RIBOut},                // origin observes itself
	}
	for _, tt := range tests {
		got, _ := c.Classify(tt.path)
		if got != tt.want {
			t.Errorf("Classify(%v) = %v, want %v", tt.path, got, tt.want)
		}
	}
	if kind, _ := c.Classify(bgp.Path{}); kind != NoRIBIn {
		t.Error("empty path should be NoRIBIn")
	}
}

func TestClassifyRIBInOnly(t *testing.T) {
	// Extend the diamond: make AS1 see a long path via AS5 that loses at
	// the AS-path-length step.
	net := sim.NewNetwork(bgp.QuasiRouterConfig)
	r1, _ := net.AddRouter(1, 0)
	r2, _ := net.AddRouter(2, 0)
	r5, _ := net.AddRouter(5, 0)
	r6, _ := net.AddRouter(6, 0)
	r4, _ := net.AddRouter(4, 0)
	net.Connect(r1, r2)
	net.Connect(r2, r4)
	net.Connect(r1, r5)
	net.Connect(r5, r6)
	net.Connect(r6, r4)
	if err := net.Run(1, []bgp.RouterID{r4.ID}); err != nil {
		t.Fatal(err)
	}
	c := NewClassifier(net)
	kind, step := c.Classify(bgp.Path{1, 5, 6, 4})
	if kind != RIBInOnly {
		t.Fatalf("kind=%v want RIBInOnly", kind)
	}
	if step != bgp.StepASPathLen {
		t.Errorf("step=%v want as-path-length", step)
	}
}

func TestSummaryAccounting(t *testing.T) {
	s := NewSummary()
	s.Record(RIBOut, bgp.StepNone)
	s.Record(RIBOut, bgp.StepNone)
	s.Record(PotentialRIBOut, bgp.StepRouterID)
	s.Record(RIBInOnly, bgp.StepASPathLen)
	s.Record(NoRIBIn, bgp.StepNone)
	if s.Total != 5 || s.Agree() != 2 || s.Disagree() != 3 {
		t.Fatalf("summary: %+v", s)
	}
	if s.RIBInMatches() != 4 {
		t.Errorf("RIBInMatches=%d", s.RIBInMatches())
	}
	if s.DownToTieBreak() != 3 {
		t.Errorf("DownToTieBreak=%d", s.DownToTieBreak())
	}
	if s.ByStep[bgp.StepRouterID] != 1 || s.ByStep[bgp.StepASPathLen] != 1 {
		t.Errorf("ByStep=%v", s.ByStep)
	}
	if s.Frac(s.RIBOut) != 0.4 {
		t.Errorf("Frac=%v", s.Frac(s.RIBOut))
	}
	if !strings.Contains(s.String(), "total=5") {
		t.Errorf("String()=%q", s.String())
	}

	o := NewSummary()
	o.Record(NoRIBIn, bgp.StepNone)
	s.Merge(o)
	if s.Total != 6 || s.NoRIBIn != 2 {
		t.Errorf("after merge: %+v", s)
	}
	empty := NewSummary()
	if empty.Frac(3) != 0 {
		t.Error("empty Frac should be 0")
	}
}

func TestCoverage(t *testing.T) {
	var c Coverage
	c.RecordPrefix(0, 0) // ignored
	c.RecordPrefix(1, 2) // 50%
	c.RecordPrefix(9, 10)
	c.RecordPrefix(10, 10)
	c.RecordPrefix(0, 5)
	if c.Prefixes != 4 {
		t.Fatalf("prefixes=%d", c.Prefixes)
	}
	if c.At50 != 3 || c.At90 != 2 || c.At100 != 1 {
		t.Errorf("coverage: %+v", c)
	}
}

func TestEvaluatePrefix(t *testing.T) {
	_, c := diamond(t)
	observed := map[bgp.ASN][]bgp.Path{
		1: {{1, 2, 4}, {1, 3, 4}},
		2: {{2, 4}},
	}
	sum := NewSummary()
	matched, total := EvaluatePrefix(c, observed, sum)
	if total != 3 || matched != 2 {
		t.Fatalf("matched=%d total=%d", matched, total)
	}
	if sum.PotentialRIBOut != 1 {
		t.Errorf("potential=%d", sum.PotentialRIBOut)
	}
}

func TestMatchKindString(t *testing.T) {
	for _, k := range []MatchKind{RIBOut, PotentialRIBOut, RIBInOnly, NoRIBIn, MatchKind(99)} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
}

func TestClassifierRouters(t *testing.T) {
	net, c := diamond(t)
	if len(c.Routers(1)) != 1 {
		t.Error("Routers(1)")
	}
	if c.Routers(99) != nil {
		t.Error("Routers(unknown) should be nil")
	}
	_ = net
}
