// Package metrics implements the paper's evaluation metrics (§4.2): for
// every observed AS-path, whether the simulated model achieved a RIB-Out
// match (some quasi-router selected the observed route as best), a
// potential RIB-Out match (the observed route was present but lost only in
// the final router-ID tie-break), a bare RIB-In match (present but
// eliminated earlier — the policies are wrong), or no RIB-In match at all
// (the observing AS never learned the route). It also provides the
// disagreement taxonomy of Table 2 and the per-prefix 50/90/100% RIB-Out
// coverage counters.
package metrics

import (
	"fmt"

	"asmodel/internal/bgp"
	"asmodel/internal/sim"
)

// MatchKind classifies one observed AS-path against the simulated state of
// the observing AS.
type MatchKind uint8

// Match kinds, strongest first.
const (
	// RIBOut: at least one quasi-router selected the observed route as its
	// best route.
	RIBOut MatchKind = iota
	// PotentialRIBOut: a RIB-In match that lost only the final lowest-
	// router-ID tie-break ("an unlucky decision in the simulation, rather
	// than using incorrect policies", §4.2).
	PotentialRIBOut
	// RIBInOnly: the observed route is in some quasi-router's RIB-In but
	// was eliminated before the tie-break.
	RIBInOnly
	// NoRIBIn: no quasi-router of the observing AS learned the route.
	NoRIBIn
)

func (k MatchKind) String() string {
	switch k {
	case RIBOut:
		return "rib-out"
	case PotentialRIBOut:
		return "potential-rib-out"
	case RIBInOnly:
		return "rib-in"
	case NoRIBIn:
		return "no-rib-in"
	default:
		return "unknown"
	}
}

// Classifier evaluates observed paths against the network's converged
// per-prefix state. Build it once per network; use after each Run.
type Classifier struct {
	net       *sim.Network
	asRouters map[bgp.ASN][]*sim.Router
}

// NewClassifier indexes the network's routers by AS.
func NewClassifier(net *sim.Network) *Classifier {
	c := &Classifier{net: net, asRouters: make(map[bgp.ASN][]*sim.Router)}
	for _, r := range net.Routers() {
		c.asRouters[r.AS] = append(c.asRouters[r.AS], r)
	}
	return c
}

// Routers returns the quasi-routers of an AS (creation order).
func (c *Classifier) Routers(asn bgp.ASN) []*sim.Router { return c.asRouters[asn] }

// Classify evaluates one observed full path (observation AS first) against
// the network state of the last Run. It also returns the decision step
// that eliminated the observed route when the result is RIBInOnly or
// PotentialRIBOut (StepNone otherwise).
func (c *Classifier) Classify(observed bgp.Path) (MatchKind, bgp.Step) {
	obsAS, ok := observed.First()
	if !ok {
		return NoRIBIn, bgp.StepNone
	}
	want := observed[1:]
	routers := c.asRouters[obsAS]
	if len(routers) == 0 {
		return NoRIBIn, bgp.StepNone
	}

	// RIB-Out: any router whose best route carries the wanted path.
	// A zero-length want matches a locally originated best route.
	for _, r := range routers {
		if best := r.Best(); best != nil && best.Path.Equal(want) {
			return RIBOut, bgp.StepNone
		}
	}
	// RIB-In: find the wanted path among candidates; keep the latest
	// elimination step (the step closest to winning).
	bestStep := bgp.StepNone
	found := false
	for _, r := range routers {
		cands, elim := r.DecideRIB()
		for i, cand := range cands {
			if cand.Path.Equal(want) {
				found = true
				if elim[i] > bestStep {
					bestStep = elim[i]
				}
			}
		}
	}
	if !found {
		return NoRIBIn, bgp.StepNone
	}
	if bestStep == bgp.StepRouterID {
		return PotentialRIBOut, bgp.StepRouterID
	}
	return RIBInOnly, bestStep
}

// Summary aggregates match results over many observed paths.
type Summary struct {
	Total           int
	RIBOut          int
	PotentialRIBOut int
	RIBInOnly       int
	NoRIBIn         int
	// ByStep counts, for non-RIB-Out paths that had a RIB-In match, the
	// decision step at which the observed route was eliminated. This
	// yields Table 2's "shorter AS-path exists" (StepASPathLen) and
	// "lowest neighbor ID" (StepRouterID) rows.
	ByStep map[bgp.Step]int
}

// NewSummary returns an empty summary.
func NewSummary() *Summary { return &Summary{ByStep: make(map[bgp.Step]int)} }

// Record adds one classified path.
func (s *Summary) Record(kind MatchKind, step bgp.Step) {
	s.Total++
	switch kind {
	case RIBOut:
		s.RIBOut++
	case PotentialRIBOut:
		s.PotentialRIBOut++
		s.ByStep[step]++
	case RIBInOnly:
		s.RIBInOnly++
		s.ByStep[step]++
	case NoRIBIn:
		s.NoRIBIn++
	}
}

// Merge adds another summary into s.
func (s *Summary) Merge(o *Summary) {
	s.Total += o.Total
	s.RIBOut += o.RIBOut
	s.PotentialRIBOut += o.PotentialRIBOut
	s.RIBInOnly += o.RIBInOnly
	s.NoRIBIn += o.NoRIBIn
	for st, n := range o.ByStep {
		s.ByStep[st] += n
	}
}

// Agree returns the number of exact best-path agreements (RIB-Out
// matches) — Table 2's "AS-paths which agree".
func (s *Summary) Agree() int { return s.RIBOut }

// Disagree returns Total - Agree.
func (s *Summary) Disagree() int { return s.Total - s.RIBOut }

// RIBInMatches returns all paths that were at least learned somewhere in
// the observing AS (the paper's upper bound on achievable prediction).
func (s *Summary) RIBInMatches() int { return s.RIBOut + s.PotentialRIBOut + s.RIBInOnly }

// DownToTieBreak returns paths matched at least down to the final
// tie-break — the paper's headline ">80% of the test cases" quantity
// (RIB-Out plus potential RIB-Out).
func (s *Summary) DownToTieBreak() int { return s.RIBOut + s.PotentialRIBOut }

// Frac renders n/Total as a fraction in [0, 1].
func (s *Summary) Frac(n int) float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(n) / float64(s.Total)
}

func (s *Summary) String() string {
	return fmt.Sprintf("total=%d rib-out=%d (%.1f%%) potential=%d (%.1f%%) rib-in-only=%d (%.1f%%) no-rib-in=%d (%.1f%%)",
		s.Total, s.RIBOut, 100*s.Frac(s.RIBOut), s.PotentialRIBOut, 100*s.Frac(s.PotentialRIBOut),
		s.RIBInOnly, 100*s.Frac(s.RIBInOnly), s.NoRIBIn, 100*s.Frac(s.NoRIBIn))
}

// Coverage tracks the per-prefix RIB-Out coverage counters: "for how many
// prefixes we find RIB-Out matches for at least 50%, 90%, or 100% of
// their respective unique AS-paths" (§4.2).
type Coverage struct {
	Prefixes int
	At50     int
	At90     int
	At100    int
}

// RecordPrefix adds one prefix given its matched and total unique path
// counts. Prefixes with no observed paths are ignored.
func (c *Coverage) RecordPrefix(matched, total int) {
	if total == 0 {
		return
	}
	c.Prefixes++
	frac := float64(matched) / float64(total)
	if frac >= 0.5 {
		c.At50++
	}
	if frac >= 0.9 {
		c.At90++
	}
	if frac >= 1.0 {
		c.At100++
	}
}

// EvaluatePrefix classifies every observed path of one prefix against the
// network's current (post-Run) state, updating the summary, and returns
// the number of RIB-Out matches and the number of observed paths.
func EvaluatePrefix(c *Classifier, observed map[bgp.ASN][]bgp.Path, sum *Summary) (matched, total int) {
	return EvaluatePrefixSorted(c, SortObserved(observed), sum)
}

// ObservedAS groups the unique observed paths of one observing AS for one
// prefix, in a deterministic flattened form.
type ObservedAS struct {
	AS    bgp.ASN
	Paths []bgp.Path
}

// SortObserved flattens an observed-paths map into ascending-AS order.
// Evaluation loops that visit the same prefix repeatedly (refinement
// sweeps, worker pools) flatten once and reuse the slice, skipping the
// per-visit map iteration and sort.
func SortObserved(observed map[bgp.ASN][]bgp.Path) []ObservedAS {
	asns := make([]bgp.ASN, 0, len(observed))
	for a := range observed {
		asns = append(asns, a)
	}
	bgp.SortASNs(asns)
	out := make([]ObservedAS, len(asns))
	for i, a := range asns {
		out[i] = ObservedAS{AS: a, Paths: observed[a]}
	}
	return out
}

// EvaluatePrefixSorted is EvaluatePrefix over a pre-flattened worklist
// (see SortObserved).
func EvaluatePrefixSorted(c *Classifier, observed []ObservedAS, sum *Summary) (matched, total int) {
	for _, oa := range observed {
		for _, p := range oa.Paths {
			kind, step := c.Classify(p)
			sum.Record(kind, step)
			total++
			if kind == RIBOut {
				matched++
			}
		}
	}
	return matched, total
}
