// Package durable provides bounded-retry primitives for transient I/O
// failures: reader/writer wrappers that resume short writes and retry
// errors marked retryable, and an atomic write-file helper that keeps a
// .bak of the previous good file. It backs the checkpoint and trace
// sinks so a flaky disk or filesystem hiccup degrades to a retried
// write instead of a lost run.
package durable

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// transienter is the contract an error implements to opt into retries.
type transienter interface{ Transient() bool }

// IsTransient reports whether any error in err's chain marks itself
// retryable via a Transient() bool method.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(transienter); ok && t.Transient() {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

// Policy bounds the retry loop. The zero value is usable: DefaultPolicy
// limits are substituted for unset fields.
type Policy struct {
	// MaxRetries is the number of retries after the first attempt
	// (0 = DefaultPolicy.MaxRetries, negative = no retries).
	MaxRetries int
	// Backoff is the first retry delay; it doubles per retry up to
	// MaxBackoff.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Sleep replaces time.Sleep (tests inject a no-op).
	Sleep func(time.Duration)
	// Transient replaces IsTransient as the retry predicate.
	Transient func(error) bool
	// OnRetry observes each retried error (metrics hook).
	OnRetry func(error)
	// WrapWriter, when set, wraps the raw destination writer before any
	// buffering — the seam fault-injection tests use to corrupt file
	// writes beneath the retry layer.
	WrapWriter func(io.Writer) io.Writer

	// normed/customSleep are set by norm(): normed makes norm idempotent,
	// customSleep records whether Sleep was caller-supplied (an injected
	// Sleep is honored even under a context; cancellation is checked
	// after it returns).
	normed      bool
	customSleep bool
}

// DefaultPolicy is applied for unset Policy fields: 4 retries starting
// at 1ms, capped at 50ms.
var DefaultPolicy = Policy{
	MaxRetries: 4,
	Backoff:    time.Millisecond,
	MaxBackoff: 50 * time.Millisecond,
}

func (p Policy) norm() Policy {
	if p.normed {
		return p
	}
	p.normed = true
	p.customSleep = p.Sleep != nil
	if p.MaxRetries == 0 {
		p.MaxRetries = DefaultPolicy.MaxRetries
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.Backoff <= 0 {
		p.Backoff = DefaultPolicy.Backoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultPolicy.MaxBackoff
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if p.Transient == nil {
		p.Transient = IsTransient
	}
	return p
}

// retry runs f until it succeeds, fails permanently, or the retry
// budget is exhausted. p must be normalized.
func (p Policy) retry(f func() error) error {
	return p.retryCtx(context.Background(), f)
}

// retryCtx is retry with cancellation: backoff sleeps abort as soon as
// ctx is done, and a cancelled ctx is checked before each attempt, so a
// shutdown drain is never spent inside a retry loop. p must be
// normalized.
func (p Policy) retryCtx(ctx context.Context, f func() error) error {
	delay := p.Backoff
	var err error
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return abortErr(cerr, err)
		}
		err = f()
		if err == nil || !p.Transient(err) || attempt >= p.MaxRetries {
			return err
		}
		if p.OnRetry != nil {
			p.OnRetry(err)
		}
		if cerr := p.sleep(ctx, delay); cerr != nil {
			return abortErr(cerr, err)
		}
		if delay *= 2; delay > p.MaxBackoff {
			delay = p.MaxBackoff
		}
	}
}

// sleep blocks for d or until ctx is done, whichever comes first. A
// caller-injected Sleep (tests use a no-op) is always invoked in full;
// cancellation is reported after it returns.
func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.customSleep {
		p.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// abortErr reports a retry loop cut short by cancellation. Both the
// context error and the last transient I/O error (when one was seen)
// are in the chain, so errors.Is(err, context.Canceled) and
// IsTransient(err) both hold where applicable.
func abortErr(cerr, last error) error {
	if last == nil {
		return fmt.Errorf("durable: retry aborted: %w", cerr)
	}
	return fmt.Errorf("durable: retry aborted (%w) after transient error: %w", cerr, last)
}

// --- Retry writer -------------------------------------------------------

// RetryWriter retries transient write errors and resumes short writes,
// so callers above it (bufio, encoders) see either full writes or a
// permanent error.
type RetryWriter struct {
	w   io.Writer
	pol Policy
	ctx context.Context
}

// NewRetryWriter wraps w with pol's retry loop.
func NewRetryWriter(w io.Writer, pol Policy) *RetryWriter {
	return NewRetryWriterCtx(context.Background(), w, pol)
}

// NewRetryWriterCtx is NewRetryWriter with cancellation: backoff sleeps
// between retries end early once ctx is done, and the cancellation
// surfaces as a write error wrapping ctx.Err().
func NewRetryWriterCtx(ctx context.Context, w io.Writer, pol Policy) *RetryWriter {
	return &RetryWriter{w: w, pol: pol.norm(), ctx: ctx}
}

func (rw *RetryWriter) Write(p []byte) (int, error) {
	written := 0
	err := rw.pol.retryCtx(rw.ctx, func() error {
		for written < len(p) {
			n, err := rw.w.Write(p[written:])
			written += n
			if err != nil {
				if n > 0 && rw.pol.Transient(err) && rw.ctx.Err() == nil {
					continue // partial progress: resume without burning a retry
				}
				return err
			}
			if n == 0 && written < len(p) {
				return io.ErrShortWrite
			}
		}
		return nil
	})
	return written, err
}

// Sync forwards to the underlying writer when it supports it.
func (rw *RetryWriter) Sync() error {
	if s, ok := rw.w.(interface{ Sync() error }); ok {
		return rw.pol.retryCtx(rw.ctx, s.Sync)
	}
	return nil
}

// Close closes the underlying writer when it is an io.Closer, so sinks
// stacked on a RetryWriter (obs.TraceSink.Close) can release the file
// without holding a second reference to it.
func (rw *RetryWriter) Close() error {
	if c, ok := rw.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// --- Retry reader -------------------------------------------------------

// RetryReader retries transient read errors so framed decoders above it
// (io.ReadFull-based record readers) never observe a retryable failure
// mid-record and misframe the stream.
type RetryReader struct {
	r   io.Reader
	pol Policy
	ctx context.Context
}

// NewRetryReader wraps r with pol's retry loop.
func NewRetryReader(r io.Reader, pol Policy) *RetryReader {
	return NewRetryReaderCtx(context.Background(), r, pol)
}

// NewRetryReaderCtx is NewRetryReader with cancellation: backoff sleeps
// between retries end early once ctx is done, and the cancellation
// surfaces as a read error wrapping ctx.Err().
func NewRetryReaderCtx(ctx context.Context, r io.Reader, pol Policy) *RetryReader {
	return &RetryReader{r: r, pol: pol.norm(), ctx: ctx}
}

func (rr *RetryReader) Read(p []byte) (int, error) {
	var n int
	err := rr.pol.retryCtx(rr.ctx, func() error {
		var err error
		n, err = rr.r.Read(p)
		if n > 0 && err != nil && rr.pol.Transient(err) {
			// Data was delivered; surface it now and retry on the next call.
			err = nil
		}
		return err
	})
	return n, err
}

// --- Atomic file write with .bak rotation -------------------------------

// WriteFileAtomic writes the output of write to path without ever
// leaving a torn file behind: the payload goes to path+".tmp" (through
// pol's retry writer and optional WrapWriter seam) and is fsynced; the
// whole attempt restarts on a transient failure; on success any
// existing file at path is rotated to path+".bak" before the tmp file
// is renamed into place. On permanent failure the previous path and
// .bak files are left untouched.
func WriteFileAtomic(path string, pol Policy, write func(io.Writer) error) error {
	return WriteFileAtomicCtx(context.Background(), path, pol, write)
}

// WriteFileAtomicCtx is WriteFileAtomic with cancellation: retry
// backoff aborts once ctx is done (the error wraps ctx.Err()), so a
// checkpoint attempted during shutdown cannot eat the drain deadline
// sleeping between retries. A cancelled attempt behaves like a
// permanent failure — the previous path and .bak files stay untouched.
func WriteFileAtomicCtx(ctx context.Context, path string, pol Policy, write func(io.Writer) error) error {
	pol = pol.norm()
	tmp := path + ".tmp"
	err := pol.retryCtx(ctx, func() error { return writeTmp(ctx, tmp, pol, write) })
	if err != nil {
		os.Remove(tmp)
		return err
	}
	bak := path + ".bak"
	if _, statErr := os.Stat(path); statErr == nil {
		if err := os.Rename(path, bak); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("durable: rotate %s: %w", bak, err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: rename %s: %w", path, err)
	}
	return nil
}

func writeTmp(ctx context.Context, tmp string, pol Policy, write func(io.Writer) error) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var w io.Writer = f
	if pol.WrapWriter != nil {
		w = pol.WrapWriter(w)
	}
	rw := NewRetryWriterCtx(ctx, w, pol)
	if err := write(rw); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
