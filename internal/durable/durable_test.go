package durable

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"asmodel/internal/faultinject"
)

// noSleep is the test policy base: retries without real backoff.
func noSleep() Policy {
	return Policy{Sleep: func(time.Duration) {}}
}

func TestIsTransient(t *testing.T) {
	te := &faultinject.TransientError{Op: "write"}
	if !IsTransient(te) {
		t.Fatal("TransientError not detected")
	}
	if !IsTransient(errorsWrap(te)) {
		t.Fatal("wrapped TransientError not detected")
	}
	if IsTransient(&faultinject.InjectedError{Op: "write"}) {
		t.Fatal("InjectedError misdetected as transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil misdetected as transient")
	}
}

func errorsWrap(err error) error {
	return &wrapped{err}
}

type wrapped struct{ err error }

func (w *wrapped) Error() string { return "wrapped: " + w.err.Error() }
func (w *wrapped) Unwrap() error { return w.err }

func TestRetryWriterResumesShortWrites(t *testing.T) {
	var sink bytes.Buffer
	fw := faultinject.NewWriter(&sink, faultinject.WriterConfig{ShortWrites: true, TransientEvery: 4})
	rw := NewRetryWriter(fw, noSleep())
	payload := bytes.Repeat([]byte("chunk-of-checkpoint-data\n"), 40)
	n, err := rw.Write(payload)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if n != len(payload) || !bytes.Equal(sink.Bytes(), payload) {
		t.Fatalf("wrote %d/%d bytes, sink %d", n, len(payload), sink.Len())
	}
}

func TestRetryWriterGivesUpOnPermanent(t *testing.T) {
	var sink bytes.Buffer
	fw := faultinject.NewWriter(&sink, faultinject.WriterConfig{FailAt: 8})
	rw := NewRetryWriter(fw, noSleep())
	_, err := rw.Write(bytes.Repeat([]byte{7}, 64))
	var inj *faultinject.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("want *InjectedError, got %v", err)
	}
}

func TestRetryWriterExhaustsBudget(t *testing.T) {
	var sink bytes.Buffer
	// Every write call fails transiently and never recovers.
	fw := faultinject.NewWriter(&sink, faultinject.WriterConfig{TransientEvery: 1})
	retries := 0
	pol := noSleep()
	pol.MaxRetries = 3
	pol.OnRetry = func(error) { retries++ }
	rw := NewRetryWriter(fw, pol)
	_, err := rw.Write([]byte("data"))
	var te *faultinject.TransientError
	if !errors.As(err, &te) {
		t.Fatalf("want *TransientError after budget, got %v", err)
	}
	if retries != 3 {
		t.Fatalf("OnRetry fired %d times, want 3", retries)
	}
}

func TestRetryReaderRecovers(t *testing.T) {
	src := bytes.Repeat([]byte("record"), 50)
	fr := faultinject.NewReader(bytes.NewReader(src), faultinject.ReaderConfig{TransientEvery: 3, ShortReads: true})
	rr := NewRetryReader(fr, noSleep())
	got, err := io.ReadAll(rr)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("got %d bytes, want %d", len(got), len(src))
	}
}

func TestWriteFileAtomicCleanAndBak(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.dat")
	write := func(payload string) error {
		return WriteFileAtomic(path, noSleep(), func(w io.Writer) error {
			_, err := io.WriteString(w, payload)
			return err
		})
	}
	if err := write("generation-1"); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if _, err := os.Stat(path + ".bak"); !os.IsNotExist(err) {
		t.Fatalf(".bak should not exist after first write: %v", err)
	}
	if err := write("generation-2"); err != nil {
		t.Fatalf("second write: %v", err)
	}
	got, _ := os.ReadFile(path)
	bak, _ := os.ReadFile(path + ".bak")
	if string(got) != "generation-2" || string(bak) != "generation-1" {
		t.Fatalf("primary=%q bak=%q", got, bak)
	}
}

func TestWriteFileAtomicRetriesTransients(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.dat")
	pol := noSleep()
	retries := 0
	pol.OnRetry = func(error) { retries++ }
	pol.WrapWriter = func(w io.Writer) io.Writer {
		return faultinject.NewWriter(w, faultinject.WriterConfig{ShortWrites: true, TransientEvery: 2, MaxTransient: 3})
	}
	payload := bytes.Repeat([]byte("0123456789abcdef"), 32)
	err := WriteFileAtomic(path, pol, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	})
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if retries == 0 {
		t.Fatal("expected at least one retry")
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, payload) {
		t.Fatalf("file corrupted after retries: %d bytes", len(got))
	}
}

func TestRetryWriterCtxAbortsBackoff(t *testing.T) {
	var sink bytes.Buffer
	// Every write fails transiently forever; without cancellation the
	// long backoff below would stall the test.
	fw := faultinject.NewWriter(&sink, faultinject.WriterConfig{TransientEvery: 1})
	ctx, cancel := context.WithCancel(context.Background())
	pol := Policy{Backoff: time.Hour, MaxBackoff: time.Hour, MaxRetries: 100}
	pol.OnRetry = func(error) { cancel() } // cancel mid-retry, before the sleep
	rw := NewRetryWriterCtx(ctx, fw, pol)
	start := time.Now()
	_, err := rw.Write([]byte("data"))
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("backoff was not aborted by cancellation (%v elapsed)", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	var te *faultinject.TransientError
	if !errors.As(err, &te) {
		t.Fatalf("want last transient error in chain, got %v", err)
	}
}

func TestWriteFileAtomicCtxCanceledKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.dat")
	if err := os.WriteFile(path, []byte("previous-good"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the write must not start
	err := WriteFileAtomicCtx(ctx, path, Policy{}, func(w io.Writer) error {
		_, err := w.Write([]byte("new-data"))
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "previous-good" {
		t.Fatalf("previous file damaged: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
}

func TestRetryReaderCtxAborts(t *testing.T) {
	fr := faultinject.NewReader(bytes.NewReader(bytes.Repeat([]byte("x"), 64)),
		faultinject.ReaderConfig{TransientEvery: 1})
	ctx, cancel := context.WithCancel(context.Background())
	pol := Policy{Backoff: time.Hour, MaxBackoff: time.Hour}
	pol.OnRetry = func(error) { cancel() }
	rr := NewRetryReaderCtx(ctx, fr, pol)
	_, err := io.ReadAll(rr)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
}

func TestWriteFileAtomicPermanentFailureKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.dat")
	if err := os.WriteFile(path, []byte("previous-good"), 0o644); err != nil {
		t.Fatal(err)
	}
	pol := noSleep()
	pol.WrapWriter = func(w io.Writer) io.Writer {
		return faultinject.NewWriter(w, faultinject.WriterConfig{FailAt: 4})
	}
	err := WriteFileAtomic(path, pol, func(w io.Writer) error {
		_, err := w.Write([]byte("new-data-that-will-fail"))
		return err
	})
	var inj *faultinject.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("want *InjectedError, got %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "previous-good" {
		t.Fatalf("previous file damaged: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
}
