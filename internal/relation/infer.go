// Package relation infers business relationships between ASes from
// observed AS-paths using the valley-free heuristic (Gao-style), seeded by
// the tier-1 clique, as the paper does for its single-router-with-policies
// baseline (§3.3): "We start by declaring all links between the level-1
// ASes as peering and then iteratively infer customer-provider
// relationships."
//
// The inferred relationships feed the Table-2 baseline only; the paper's
// actual AS-routing model is deliberately agnostic about relationships.
package relation

import (
	"sort"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/topology"
)

// Rel is the relationship of an ordered AS pair (a, b) from a's
// perspective.
type Rel uint8

// Relationship values.
const (
	// Unknown means the edge could not be classified.
	Unknown Rel = iota
	// Customer means a is a customer of b (b provides transit to a).
	Customer
	// Provider means a is a provider of b.
	Provider
	// Peer means a and b exchange traffic settlement-free.
	Peer
	// Sibling means a and b belong to the same organization and exchange
	// all routes. The paper treats siblings like peers for local-pref
	// purposes (§3.3, footnote 2).
	Sibling
)

func (r Rel) String() string {
	switch r {
	case Customer:
		return "customer"
	case Provider:
		return "provider"
	case Peer:
		return "peer"
	case Sibling:
		return "sibling"
	default:
		return "unknown"
	}
}

// invert flips the perspective of a relationship.
func (r Rel) invert() Rel {
	switch r {
	case Customer:
		return Provider
	case Provider:
		return Customer
	default:
		return r
	}
}

// Inference holds classified AS adjacencies.
type Inference struct {
	rels map[topology.Edge]Rel // stored from the perspective of Edge.A
}

// Rel returns the relationship of a toward b (Customer means a is b's
// customer). Unknown for unclassified or unseen pairs.
func (inf *Inference) Rel(a, b bgp.ASN) Rel {
	e := topology.MakeEdge(a, b)
	r := inf.rels[e]
	if a == e.A {
		return r
	}
	return r.invert()
}

// Counts tallies the classification, counting each undirected edge once
// (customer-provider edges counted as Customer).
func (inf *Inference) Counts() map[Rel]int {
	out := make(map[Rel]int)
	for _, r := range inf.rels {
		if r == Provider {
			r = Customer
		}
		out[r]++
	}
	return out
}

// Len returns the number of classified edges (including Unknown entries).
func (inf *Inference) Len() int { return len(inf.rels) }

// Infer classifies every edge of the dataset's AS graph. tier1 is the
// level-1 clique (see topology.Tier1Clique); all tier-1/tier-1 edges are
// declared peering up front and never reclassified.
//
// The remaining edges are voted on path-by-path using the valley-free
// pattern: on each path (observation AS first, origin last) the AS with
// the highest degree is taken as the peak; edges on the observation side
// of the peak are traversed downhill (the nearer-to-observation AS is the
// customer) and edges on the origin side uphill (the nearer-to-origin AS
// is the customer). Balanced votes yield siblings, or peers when the edge
// is repeatedly seen connecting the two highest-degree ASes of a path.
func Infer(d *dataset.Dataset, tier1 []bgp.ASN) *Inference {
	g := topology.FromDataset(d)
	inT1 := make(map[bgp.ASN]bool, len(tier1))
	for _, a := range tier1 {
		inT1[a] = true
	}

	type voteCount struct {
		aCustOfB int // Edge.A is customer of Edge.B
		bCustOfA int
		peakPair int // edge connected the path's two highest-degree ASes
	}
	votes := make(map[topology.Edge]*voteCount, g.NumEdges())
	getVotes := func(e topology.Edge) *voteCount {
		v := votes[e]
		if v == nil {
			v = &voteCount{}
			votes[e] = v
		}
		return v
	}

	for _, rec := range d.Records {
		p := rec.Path.StripPrepend()
		if len(p) < 2 || p.HasLoop() {
			continue
		}
		// Peak = highest-degree AS on the path (ties: first occurrence,
		// which is closer to the observation point).
		top := 0
		for i := 1; i < len(p); i++ {
			if g.Degree(p[i]) > g.Degree(p[top]) {
				top = i
			}
		}
		for i := 0; i+1 < len(p); i++ {
			e := topology.MakeEdge(p[i], p[i+1])
			v := getVotes(e)
			var customer bgp.ASN
			if i < top {
				customer = p[i] // downhill: receiver is the customer
			} else {
				customer = p[i+1] // uphill: sender is the customer
			}
			if customer == e.A {
				v.aCustOfB++
			} else {
				v.bCustOfA++
			}
		}
		// Peak-pair marking: the edge between the two highest-degree ASes
		// adjacent at the peak is a peering candidate (Gao phase 3).
		var cand []topology.Edge
		if top > 0 {
			cand = append(cand, topology.MakeEdge(p[top-1], p[top]))
		}
		if top+1 < len(p) {
			cand = append(cand, topology.MakeEdge(p[top], p[top+1]))
		}
		if len(cand) > 0 {
			best := cand[0]
			bestDeg := -1
			for _, e := range cand {
				d2 := g.Degree(e.A) + g.Degree(e.B)
				if d2 > bestDeg {
					bestDeg = d2
					best = e
				}
			}
			getVotes(best).peakPair++
		}
	}

	inf := &Inference{rels: make(map[topology.Edge]Rel, g.NumEdges())}
	edges := make([]topology.Edge, 0, len(votes))
	for e := range votes {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	for _, e := range edges {
		if inT1[e.A] && inT1[e.B] {
			inf.rels[e] = Peer
			continue
		}
		v := votes[e]
		a, b := v.aCustOfB, v.bCustOfA
		switch {
		case a == 0 && b == 0:
			inf.rels[e] = Unknown
		case a > 0 && b > 0 && max(a, b) <= 3*min(a, b):
			// Balanced votes: routes flow "through" the edge in both
			// directions. Peak edges are peerings, the rest siblings.
			if v.peakPair > 0 {
				inf.rels[e] = Peer
			} else {
				inf.rels[e] = Sibling
			}
		case a >= b:
			inf.rels[e] = Customer // A is customer of B
		default:
			inf.rels[e] = Provider
		}
	}
	// Edges present in the graph but on no usable path stay Unknown.
	for _, e := range g.Edges() {
		if _, ok := inf.rels[e]; !ok {
			if inT1[e.A] && inT1[e.B] {
				inf.rels[e] = Peer
			} else {
				inf.rels[e] = Unknown
			}
		}
	}
	return inf
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
