package relation

import (
	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/sim"
)

func rec(obs string, prefix string, path ...bgp.ASN) dataset.Record {
	return dataset.Record{Obs: dataset.ObsPointID(obs), ObsAS: path[0], Prefix: prefix, Path: bgp.Path(path)}
}

// hierarchy builds a small two-tier Internet:
//
//	tier-1: 10 -- 20 (peering)
//	customers: 100 under 10, 200 under 20, 300 under both (multi-homed)
//
// with observation points at 10 and 20.
func hierarchy() *dataset.Dataset {
	return &dataset.Dataset{Records: []dataset.Record{
		rec("op10", "P200", 10, 20, 200),
		rec("op10", "P100", 10, 100),
		rec("op20", "P100", 20, 10, 100),
		rec("op20", "P200", 20, 200),
		rec("op10", "P300", 10, 300),
		rec("op20", "P300", 20, 300),
		rec("op10", "P20", 10, 20),
		rec("op20", "P10", 20, 10),
		// Deeper chain: 400 is a customer of 100.
		rec("op10", "P400", 10, 100, 400),
		rec("op20", "P400", 20, 10, 100, 400),
	}}
}

func TestInferHierarchy(t *testing.T) {
	d := hierarchy()
	inf := Infer(d, []bgp.ASN{10, 20})
	if got := inf.Rel(10, 20); got != Peer {
		t.Errorf("10-20 = %v, want peer (tier-1 seed)", got)
	}
	if got := inf.Rel(100, 10); got != Customer {
		t.Errorf("100->10 = %v, want customer", got)
	}
	if got := inf.Rel(10, 100); got != Provider {
		t.Errorf("10->100 = %v, want provider", got)
	}
	if got := inf.Rel(400, 100); got != Customer {
		t.Errorf("400->100 = %v, want customer", got)
	}
	if got := inf.Rel(300, 10); got != Customer {
		t.Errorf("300->10 = %v, want customer", got)
	}
	if got := inf.Rel(300, 20); got != Customer {
		t.Errorf("300->20 = %v, want customer", got)
	}
	if got := inf.Rel(1, 2); got != Unknown {
		t.Errorf("unseen pair = %v, want unknown", got)
	}
}

func TestInferCounts(t *testing.T) {
	inf := Infer(hierarchy(), []bgp.ASN{10, 20})
	counts := inf.Counts()
	if counts[Peer] < 1 {
		t.Errorf("peer count = %d", counts[Peer])
	}
	if counts[Customer] < 4 {
		t.Errorf("customer count = %d (counts=%v)", counts[Customer], counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != inf.Len() {
		t.Errorf("counts total %d != len %d", total, inf.Len())
	}
}

func TestRelString(t *testing.T) {
	for _, r := range []Rel{Unknown, Customer, Provider, Peer, Sibling} {
		if r.String() == "" {
			t.Error("empty rel string")
		}
	}
	if Customer.invert() != Provider || Provider.invert() != Customer {
		t.Error("invert asymmetric rels")
	}
	if Peer.invert() != Peer || Sibling.invert() != Sibling || Unknown.invert() != Unknown {
		t.Error("invert symmetric rels")
	}
}

func TestLocalPrefFor(t *testing.T) {
	if LocalPrefFor(Provider) != LPCustomer {
		t.Error("route from my customer should get the customer local-pref")
	}
	if LocalPrefFor(Customer) != LPProvider {
		t.Error("route from my provider should get the provider local-pref")
	}
	for _, r := range []Rel{Peer, Sibling, Unknown} {
		if LocalPrefFor(r) != LPPeer {
			t.Errorf("LocalPrefFor(%v) = %d", r, LocalPrefFor(r))
		}
	}
}

func TestExportAllowed(t *testing.T) {
	custRoute := &bgp.Route{Path: bgp.Path{100}, LocalPref: LPCustomer}
	peerRoute := &bgp.Route{Path: bgp.Path{20}, LocalPref: LPPeer}
	provRoute := &bgp.Route{Path: bgp.Path{10}, LocalPref: LPProvider}
	own := &bgp.Route{Path: bgp.Path{}, LocalPref: bgp.DefaultLocalPref}

	// To my customer (I am its Provider): everything goes.
	for _, r := range []*bgp.Route{custRoute, peerRoute, provRoute, own} {
		if !ExportAllowed(r, Provider) {
			t.Errorf("to customer: %v should be exportable", r)
		}
	}
	// To my peer: only customer routes and my own prefixes.
	if !ExportAllowed(custRoute, Peer) || !ExportAllowed(own, Peer) {
		t.Error("customer/own routes must go to peers")
	}
	if ExportAllowed(peerRoute, Peer) || ExportAllowed(provRoute, Peer) {
		t.Error("peer/provider routes must not go to peers")
	}
	// To my provider (rel Customer): same restriction.
	if ExportAllowed(peerRoute, Customer) {
		t.Error("peer routes must not go to providers")
	}
}

// TestApplyPoliciesValleyFree: with relationship policies applied, a route
// learned from one peer must not be exported to another peer.
func TestApplyPoliciesValleyFree(t *testing.T) {
	// Triangle: 10 and 20 are tier-1 peers; 30 peers with both. 200 is a
	// customer of 20 only.
	d := &dataset.Dataset{Records: []dataset.Record{
		rec("op10", "P20", 10, 20),
		rec("op20", "P10", 20, 10),
		rec("op10", "P200", 10, 20, 200),
		rec("op20", "P200", 20, 200),
	}}
	inf := Infer(d, []bgp.ASN{10, 20})

	net := sim.NewNetwork(bgp.QuasiRouterConfig)
	r10, _ := net.AddRouter(10, 0)
	r20, _ := net.AddRouter(20, 0)
	r30, _ := net.AddRouter(30, 0)
	r200, _ := net.AddRouter(200, 0)
	net.Connect(r10, r20)
	net.Connect(r10, r30)
	net.Connect(r20, r30)
	net.Connect(r20, r200)
	// Manually classify 30's edges as peering and 200 as customer of 20.
	// (The inference has no data about 30, so patch via a fresh Inference.)
	if inf.Rel(20, 200) != Provider {
		t.Fatalf("20->200 = %v, want provider", inf.Rel(20, 200))
	}
	ApplyPolicies(net, inf)

	// Prefix originated at 200 (customer of 20): must reach everyone that
	// has a valley-free path. 10 learns it via 20 (customer route at 20:
	// exportable to peer 10). 30's edge to 20 is Unknown -> treated as
	// peer both ways, so 30 also gets the customer route from 20.
	if err := net.Run(1, []bgp.RouterID{r200.ID}); err != nil {
		t.Fatal(err)
	}
	if r10.Best() == nil {
		t.Fatal("AS10 should learn the customer route of AS20")
	}
	if got := r10.Best().Path.String(); got != "20 200" {
		t.Errorf("AS10 best = %q", got)
	}

	// Prefix originated at 10 (peer of 20): 20 may use it but must NOT
	// re-export it to 200?? No: 200 is 20's customer, so it MUST get it.
	// The forbidden direction is 20 -> 30 (peer route to a peer/unknown).
	if err := net.Run(2, []bgp.RouterID{r10.ID}); err != nil {
		t.Fatal(err)
	}
	if r200.Best() == nil {
		t.Error("customer AS200 should receive peer routes of its provider")
	}
	// 30 hears the route directly from 10 (unknown/peer edge), but must
	// not hear "20 10" from 20. Check 30's RIB-In for the forbidden path.
	routes, _ := r30.RIBIn()
	for _, rt := range routes {
		if rt.Path.Equal(bgp.Path{20, 10}) {
			t.Errorf("valley violation: AS30 received %v from AS20", rt.Path)
		}
	}
}

func TestInferDeterminism(t *testing.T) {
	d := hierarchy()
	a := Infer(d, []bgp.ASN{10, 20})
	b := Infer(d, []bgp.ASN{10, 20})
	if a.Len() != b.Len() {
		t.Fatal("non-deterministic size")
	}
	for e, r := range a.rels {
		if b.rels[e] != r {
			t.Fatalf("non-deterministic classification for %v: %v vs %v", e, r, b.rels[e])
		}
	}
}
