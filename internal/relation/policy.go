package relation

import (
	"asmodel/internal/bgp"
	"asmodel/internal/sim"
)

// Local-pref values used to realize relationship policies (§3.3): routes
// learned from customers are preferred over peer/sibling/unknown routes,
// which are preferred over provider routes. Unknown edges get the same
// local-pref as peerings (footnote 2).
const (
	LPCustomer = 100
	LPPeer     = 90
	LPProvider = 80
)

// LocalPrefFor maps the relationship of the announcing neighbor (from the
// receiving AS's perspective: rel is receiver's relationship toward the
// sender) to the local-pref assigned on import. A route from my customer
// (I am its Provider) is the most preferred.
func LocalPrefFor(relToSender Rel) uint32 {
	switch relToSender {
	case Provider: // sender is my customer
		return LPCustomer
	case Customer: // sender is my provider
		return LPProvider
	default: // peer, sibling, unknown
		return LPPeer
	}
}

// ExportAllowed implements valley-free export: routes learned from a
// customer (or originated locally) are exported to everyone; routes
// learned from peers/providers are exported only to customers and
// siblings. relToReceiver is the exporter's relationship toward the
// session's remote AS.
//
// The route's provenance is encoded in its local-pref, which
// ApplyPolicies assigns on import — the standard operational encoding.
func ExportAllowed(r *bgp.Route, relToReceiver Rel) bool {
	if relToReceiver == Provider || relToReceiver == Sibling {
		// Receiver is my customer or sibling: export everything.
		return true
	}
	// Receiver is my provider, peer, or unknown: export only my own
	// prefixes and customer routes.
	return len(r.Path) == 0 || r.LocalPref == LPCustomer
}

// ApplyPolicies installs relationship-based import and export hooks on
// every eBGP session of the network, realizing the paper's §3.3 baseline:
// local-pref ranking by relationship plus valley-free route filters.
func ApplyPolicies(n *sim.Network, inf *Inference) {
	for _, r := range n.Routers() {
		for _, p := range r.Peers() {
			if !p.EBGP {
				continue
			}
			localAS, remoteAS := p.Local.AS, p.Remote.AS
			relToSender := inf.Rel(localAS, remoteAS)
			lp := LocalPrefFor(relToSender)
			p.ImportHook = func(rt *bgp.Route) bool {
				rt.LocalPref = lp
				return true
			}
			relToReceiver := relToSender
			p.ExportHook = func(rt *bgp.Route) bool {
				return ExportAllowed(rt, relToReceiver)
			}
		}
	}
}
