// Package asmodel builds AS-topology models of the Internet that capture
// route diversity, reproducing Mühlbauer, Feldmann, Maennel, Roughan and
// Uhlig, "Building an AS-topology model that captures route diversity"
// (SIGCOMM 2006).
//
// The library models every AS as one or more quasi-routers — logical
// partitions of the AS's route-selection behaviour — and synthesises
// per-prefix routing policies (export filters plus MED ranking) with an
// iterative refinement heuristic until a BGP propagation simulation
// reproduces every AS-path of a training set of BGP observations. The
// refined model predicts unobserved routes and answers what-if questions
// (de-peering, policy changes).
//
// # Workflow
//
//	ds := ... // load a dataset: asmodel.ReadDataset, asmodel.MRTToDataset,
//	          // or asmodel.GenerateInternet(...).RunAll()
//	ds.Normalize()
//	train, valid := ds.SplitByObsPoint(0.5, seed)
//	m, res, err := asmodel.BuildAndRefine(ds, train, asmodel.RefineConfig{})
//	ev, err := m.Evaluate(valid)
//
// Per-prefix simulation is embarrassingly parallel: Model.EvaluateParallel
// fans prefixes across a worker pool of deep model clones and merges
// results deterministically, so it returns exactly what Evaluate would for
// any worker count (DefaultWorkers sizes the pool to the CPU count).
// RefineConfig.Workers parallelizes the whole refinement — the mutating
// iterations run speculatively on pooled clones with a sequential
// worklist-order merge, and the verify sweep fans out over the same pool —
// with the identical byte-for-byte guarantee:
//
//	ev, err := m.EvaluateParallel(ctx, valid, asmodel.DefaultWorkers())
//
// The subpackages under internal/ carry the substrates: a C-BGP-style
// static BGP propagation engine (internal/sim), a router-level
// ground-truth simulator with iBGP and hot-potato routing
// (internal/routersim, internal/igp), an MRT/RFC-6396 codec
// (internal/mrt), AS-graph analysis (internal/topology), valley-free
// relationship inference (internal/relation), a synthetic-Internet
// generator (internal/gen), and the evaluation metrics of the paper
// (internal/metrics). This package re-exports the types needed to drive
// the published workflow.
package asmodel

import (
	"context"
	"io"
	"time"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/gen"
	"asmodel/internal/ingest"
	"asmodel/internal/lg"
	"asmodel/internal/model"
	"asmodel/internal/mrt"
	"asmodel/internal/relation"
	"asmodel/internal/serve"
	"asmodel/internal/stream"
	"asmodel/internal/topology"
)

// Core data types.
type (
	// ASN is an autonomous system number.
	ASN = bgp.ASN
	// Path is an AS-path, neighbor first, origin last.
	Path = bgp.Path
	// Record is one BGP observation: (observation point, prefix, AS-path).
	Record = dataset.Record
	// Dataset is a collection of BGP observations.
	Dataset = dataset.Dataset
	// ObsPointID identifies one BGP feed.
	ObsPointID = dataset.ObsPointID
	// Universe maps prefix names to dense IDs and origins.
	Universe = dataset.Universe
	// Graph is an undirected AS-level graph.
	Graph = topology.Graph
)

// Modeling types.
type (
	// Model is the quasi-router AS-routing model (the paper's primary
	// contribution).
	Model = model.Model
	// RefineConfig controls the iterative refinement heuristic; the zero
	// value is the paper's configuration.
	RefineConfig = model.RefineConfig
	// RefineResult reports what refinement did.
	RefineResult = model.RefineResult
	// Evaluation is the outcome of Model.Evaluate: §4.2 match metrics
	// plus per-prefix coverage.
	Evaluation = model.Evaluation
	// PathChange describes a what-if prediction difference.
	PathChange = model.PathChange
)

// Robustness types: crash-safe checkpointing, cancellation and
// divergence quarantine.
type (
	// CheckpointConfig on RefineConfig enables periodic atomic
	// checkpoints of an in-flight refinement.
	CheckpointConfig = model.CheckpointConfig
	// Checkpoint is a restorable refinement snapshot (model + worklist +
	// counters).
	Checkpoint = model.Checkpoint
	// QuarantineRecord reports a divergence-quarantined prefix and
	// whether the escalated retry recovered it.
	QuarantineRecord = model.QuarantineRecord
	// DivergenceRecord reports a prefix whose evaluation run exhausted
	// its message budget (Evaluation.Divergences).
	DivergenceRecord = model.DivergenceRecord
	// InterruptedError is returned by the context-aware entry points
	// (Model.RefineContext, Model.EvaluateContext) when cancellation
	// stops the run; it carries progress made and the last checkpoint.
	InterruptedError = model.InterruptedError
	// WorkerPanicError is a panic recovered inside a parallel
	// evaluation or verify-sweep worker, attributed to the prefix that
	// raised it.
	WorkerPanicError = model.WorkerPanicError
	// IngestOptions selects strict (abort on first malformed record) or
	// lenient (skip, count, bounded by MaxRecordErrors) ingestion.
	IngestOptions = ingest.Options
	// IngestReport summarizes a lenient load: records read, records
	// skipped and the first few errors verbatim.
	IngestReport = ingest.Report
)

// DefaultWorkers is the worker-pool size Model.EvaluateParallel and
// RefineConfig.Workers use for "one worker per available CPU": it returns
// runtime.GOMAXPROCS(0). For refinement the pool drives both the
// speculative refine iterations and the parallel verify sweep; outputs
// are byte-identical at any worker count.
func DefaultWorkers() int { return model.DefaultWorkers() }

// LoadCheckpointFile reads a refinement checkpoint written during a
// checkpointed Refine run (see CheckpointConfig).
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	return model.LoadCheckpointFile(path)
}

// ResumeRefine continues a checkpointed refinement against the same
// training set; the resumed run converges to the same final model and
// match fractions as an uninterrupted one.
func ResumeRefine(ctx context.Context, cp *Checkpoint, train *Dataset, cfg RefineConfig) (*model.RefineResult, error) {
	return model.ResumeRefine(ctx, cp, train, cfg)
}

// Synthetic-Internet generation (the substitute for Routeviews/RIPE
// feeds).
type (
	// GenConfig parameterizes the synthetic Internet.
	GenConfig = gen.Config
	// Internet is a generated router-level ground-truth Internet.
	Internet = gen.Internet
)

// DefaultGenConfig returns a laptop-scale synthetic-Internet
// configuration with every route-diversity mechanism enabled.
func DefaultGenConfig() GenConfig { return gen.DefaultConfig() }

// GenerateInternet builds a synthetic ground-truth Internet.
func GenerateInternet(cfg GenConfig) (*Internet, error) { return gen.Generate(cfg) }

// ParsePath parses a space-separated AS-path such as "701 1239 24249".
func ParsePath(s string) (Path, error) { return bgp.ParsePath(s) }

// ReadDataset parses the line-oriented dataset text format, aborting on
// the first malformed line. For dirty real-world inputs use
// ReadDatasetReport with lenient IngestOptions.
func ReadDataset(r io.Reader) (*Dataset, error) { return dataset.Read(r) }

// ReadDatasetReport parses the dataset text format under the given
// ingestion policy; in lenient mode malformed lines are skipped and
// counted in the report until the error budget runs out.
func ReadDatasetReport(r io.Reader, opts IngestOptions) (*Dataset, *IngestReport, error) {
	return dataset.ReadReport(r, opts)
}

// MRTToDataset converts an MRT TABLE_DUMP_V2 RIB dump into a dataset,
// aborting on the first malformed record.
func MRTToDataset(r io.Reader) (*Dataset, error) {
	ds, _, err := mrt.ToDataset(r)
	return ds, err
}

// MRTToDatasetReport converts an MRT RIB dump under the given ingestion
// policy; in lenient mode corrupt record bodies are skipped and counted,
// and a torn trailing frame keeps everything up to the last good record.
func MRTToDatasetReport(r io.Reader, opts IngestOptions) (*Dataset, *IngestReport, error) {
	ds, _, rep, err := mrt.ToDatasetOpts(r, opts)
	return ds, rep, err
}

// NewGraph derives the AS-level graph of a dataset (§3.1).
func NewGraph(ds *Dataset) *Graph { return topology.FromDataset(ds) }

// NewModel builds the paper's initial model (§4.5): one quasi-router per
// AS and one session per AS edge, over the universe of the given
// datasets.
func NewModel(g *Graph, dss ...*Dataset) (*Model, error) {
	return model.NewInitial(g, dataset.NewUniverse(dss...))
}

// BuildAndRefine is the end-to-end §4 pipeline: derive the AS graph and
// prefix universe from full (normally the union of training and
// validation feeds, as the paper does in §4.5), build the initial model,
// and refine it against train until the training paths are matched.
func BuildAndRefine(full, train *Dataset, cfg RefineConfig) (*Model, *RefineResult, error) {
	m, err := NewModel(NewGraph(full), full)
	if err != nil {
		return nil, nil, err
	}
	res, err := m.Refine(train, cfg)
	if err != nil {
		return nil, nil, err
	}
	return m, res, nil
}

// InferTier1 grows the level-1 clique from seed ASes (§3.1).
func InferTier1(g *Graph, seeds []ASN) ([]ASN, error) { return g.Tier1Clique(seeds) }

// InferRelationships runs the valley-free relationship inference used by
// the Table-2 policy baseline (§3.3).
func InferRelationships(ds *Dataset, tier1 []ASN) *relation.Inference {
	return relation.Infer(ds, tier1)
}

// SaveModel writes a refined model to w in the versioned text format; a
// model saved after refinement can be reloaded for prediction and what-if
// studies without re-running the heuristic.
func SaveModel(m *Model, w io.Writer) error { return m.Save(w) }

// LoadModel reads a model written by SaveModel.
func LoadModel(r io.Reader) (*Model, error) { return model.Load(r) }

// ParseLookingGlass parses a "show ip bgp" style looking-glass table into
// dataset records observed at the given AS (see internal/lg for the
// format rules).
func ParseLookingGlass(r io.Reader, obs ObsPointID, localAS ASN, ds *Dataset) error {
	_, err := lg.Parse(r, lg.Options{Obs: obs, LocalAS: localAS}, ds)
	return err
}

// Serving types: the cmd/asmodeld route-prediction daemon as a library —
// an immutable model snapshot behind HTTP/JSON with validated hot-swap,
// load shedding and graceful drain.
type (
	// ServeConfig parameterizes a prediction server (checkpoint/model
	// source, listen address, probe count, in-flight bound, deadlines).
	ServeConfig = serve.Config
	// ServeServer is the daemon: Run serves until the context is
	// canceled, Reload hot-swaps a validated snapshot, SetModel installs
	// an in-memory model.
	ServeServer = serve.Server
	// ServeSnapshot is one immutable serving unit; Predict answers a
	// (vantage, prefix) query against exactly this snapshot.
	ServeSnapshot = serve.Snapshot
	// ServePrediction is the service's answer: predicted path, route
	// diversity, tie-break depth and top-k alternates.
	ServePrediction = serve.Prediction
	// ServeReloadError reports a failed hot-swap; RolledBack tells
	// whether a previous snapshot kept serving.
	ServeReloadError = serve.ReloadError
	// ServeDrainError reports a shutdown drain that exceeded its
	// deadline, cutting off accepted requests.
	ServeDrainError = serve.DrainError
)

// NewServer builds a prediction daemon from the given configuration. No
// I/O happens until Reload, SetModel or Run.
func NewServer(cfg ServeConfig) *ServeServer { return serve.New(cfg) }

// NewServingSnapshot wraps a quiescent refined model for concurrent
// prediction serving without the daemon: poolSize bounds the clone
// free-list used by concurrent propagations.
func NewServingSnapshot(m *Model, poolSize int) *ServeSnapshot {
	return serve.NewSnapshot(m, poolSize)
}

// Streaming types: the `asmodel stream` incremental refinement loop as
// a library — tail an MRT update source, cut deterministic record-count
// batches, delta-refine only changed prefixes, and commit cursor +
// checkpoint atomically after every batch (exactly-once; crash recovery
// byte-identical to an uninterrupted run, see DESIGN.md §9).
type (
	// StreamConfig parameterizes a streaming run (source, state file,
	// batch size, stability filter, worker pool, bootstrap dataset).
	StreamConfig = stream.Config
	// StreamSource feeds MRT records (NewStreamFileSource /
	// NewStreamDirSource build the file and directory tailers).
	StreamSource = stream.Source
	// StreamResult reports a completed or cleanly stopped run: committed
	// cursor position plus cumulative replay/refinement totals.
	StreamResult = stream.Result
	// StreamEvent is one structured trace event ("batch" events are
	// deterministic and post-commit; "recovery"/"stall" are volatile).
	StreamEvent = stream.Event
)

// NewStreamer builds a streaming refinement loop; Run drives it until
// the source ends (oneshot), MaxBatches commits, or the context is
// canceled. A state file left by a previous run resumes it.
func NewStreamer(cfg StreamConfig) *stream.Streamer { return stream.New(cfg) }

// NewStreamFileSource tails one MRT update file; in follow mode it
// polls for appended records instead of stopping at EOF.
func NewStreamFileSource(path string, follow bool, poll time.Duration) StreamSource {
	return stream.NewFileSource(path, follow, poll)
}

// NewStreamDirSource streams a directory of MRT update files in
// lexical filename order; in follow mode it waits for new files (and
// appends to the newest) instead of stopping.
func NewStreamDirSource(dir, pattern string, follow bool, poll time.Duration) StreamSource {
	return stream.NewDirSource(dir, pattern, follow, poll)
}
