// Benchmarks regenerating every table and figure of the paper's
// evaluation (one Benchmark per artifact; see DESIGN.md §4 for the
// experiment index). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports domain-specific metrics (match fractions, model
// sizes) through b.ReportMetric in addition to wall time.
package asmodel

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"asmodel/internal/bgp"
	"asmodel/internal/dataset"
	"asmodel/internal/experiments"
	"asmodel/internal/gen"
	"asmodel/internal/model"
	"asmodel/internal/sim"
	"asmodel/internal/topology"
)

// benchSuite is generated once and shared: generation itself is benched
// separately (BenchmarkGroundTruthGeneration).
var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
	benchErr   error
)

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.Seed = 1
		benchSuite, benchErr = experiments.NewSuite(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSuite
}

// refined is the shared evaluation fixture for the parallel-evaluation
// benchmarks: the suite's model refined on an observation-point split,
// with the validation half to score.
var (
	refinedOnce  sync.Once
	refinedModel *model.Model
	refinedValid *dataset.Dataset
	refinedErr   error
)

func refined(b *testing.B) (*model.Model, *dataset.Dataset) {
	b.Helper()
	s := suite(b)
	refinedOnce.Do(func() {
		train, valid := s.Data.SplitByObsPoint(0.5, 1)
		g := topology.FromDataset(s.Data)
		m, err := model.NewInitial(g, dataset.NewUniverse(s.Data))
		if err != nil {
			refinedErr = err
			return
		}
		if _, err := m.Refine(train, model.RefineConfig{}); err != nil {
			refinedErr = err
			return
		}
		refinedModel, refinedValid = m, valid
	})
	if refinedErr != nil {
		b.Fatal(refinedErr)
	}
	return refinedModel, refinedValid
}

// BenchmarkEvaluateSequential measures the sequential evaluation of a
// refined model against the held-out half — the baseline the parallel
// pool is compared to.
func BenchmarkEvaluateSequential(b *testing.B) {
	m, valid := refined(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := m.Evaluate(valid)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*ev.Summary.Frac(ev.Summary.DownToTieBreak()), "pct-down-to-tie-break")
	}
}

// BenchmarkEvaluateParallel measures the same evaluation through the
// worker pool at several sizes. On multi-core machines the speedup
// approaches the worker count (per-prefix simulation shares nothing);
// on a single-CPU machine it stays near 1x and measures pool overhead.
func BenchmarkEvaluateParallel(b *testing.B) {
	m, valid := refined(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.EvaluateParallel(context.Background(), valid, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroundTruthGeneration measures building the synthetic Internet
// and simulating the ground truth for every prefix (the data-collection
// substitute).
func BenchmarkGroundTruthGeneration(b *testing.B) {
	cfg := experiments.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		in, err := gen.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ds, err := in.RunAll()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(ds.Len()), "records")
	}
}

// BenchmarkFigure2DiversityHistogram regenerates Figure 2 (E1).
func BenchmarkFigure2DiversityHistogram(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, _ := s.Figure2()
		b.ReportMetric(100*h.FracAbove(1), "pct-multi-path-pairs")
	}
}

// BenchmarkTable1MaxDiversityQuantiles regenerates Table 1 (E2).
func BenchmarkTable1MaxDiversityQuantiles(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, _ := s.Table1()
		b.ReportMetric(float64(q[0.99]), "p99-diversity")
	}
}

// BenchmarkTable2ShortestPath regenerates Table 2 column 1 (E3): the
// single-router shortest-path baseline over all prefixes.
func BenchmarkTable2ShortestPath(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		sp := res.ShortestPath.Summary
		b.ReportMetric(100*sp.Frac(sp.Agree()), "pct-agree-shortest")
		pol := res.Policies.Summary
		b.ReportMetric(100*pol.Frac(pol.Agree()), "pct-agree-policies")
	}
}

// BenchmarkTable2InferredPolicies regenerates Table 2 column 2 (E4) in
// isolation (relationship inference plus policy evaluation).
func BenchmarkTable2InferredPolicies(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		pol := res.Policies.Summary
		b.ReportMetric(100*pol.Frac(pol.NoRIBIn), "pct-not-available")
	}
}

// BenchmarkRefineTraining regenerates the §5 training result (E5): the
// iterative refinement until the training set is matched exactly.
func BenchmarkRefineTraining(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := s.RunPipeline(0.5, int64(i+1), experiments.RefineConfigDefault())
		if err != nil {
			b.Fatal(err)
		}
		if !o.Refine.Converged {
			b.Fatalf("refinement did not converge: %+v", o.Refine)
		}
		b.ReportMetric(float64(o.Refine.Iterations), "iterations")
		b.ReportMetric(float64(o.Refine.QuasiRoutersAdded), "quasi-routers-added")
		b.ReportMetric(100*o.Train.Summary.Frac(o.Train.Summary.RIBOut), "pct-train-rib-out")
	}
}

// BenchmarkPredictValidation regenerates the §5 validation headline (E6):
// prediction accuracy for held-out observation points.
func BenchmarkPredictValidation(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := s.RunPipeline(0.5, int64(i+1), experiments.RefineConfigDefault())
		if err != nil {
			b.Fatal(err)
		}
		v := o.Valid.Summary
		b.ReportMetric(100*v.Frac(v.DownToTieBreak()), "pct-down-to-tie-break")
		b.ReportMetric(100*v.Frac(v.RIBOut), "pct-rib-out")
		b.ReportMetric(100*v.Frac(v.RIBInMatches()), "pct-rib-in")
	}
}

// BenchmarkPredictUnseenPrefixes regenerates the origin-split evaluation
// (E7, §4.7).
func BenchmarkPredictUnseenPrefixes(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := s.UnseenPrefixes(0.5, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		v := o.Valid.Summary
		b.ReportMetric(100*v.Frac(v.DownToTieBreak()), "pct-down-to-tie-break")
	}
}

// BenchmarkFigure3CaseStudy regenerates the diversity case study (E8).
func BenchmarkFigure3CaseStudy(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, out := s.Figure3(); len(out) == 0 {
			b.Fatal("empty case study")
		}
	}
}

// BenchmarkTopologyStats regenerates the §3.1 dataset statistics (E11).
func BenchmarkTopologyStats(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _, err := s.TopologyStats()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.ASes), "ASes")
	}
}

// BenchmarkAblation regenerates the E10 design-choice ablations.
func BenchmarkAblation(b *testing.B) {
	s := suite(b)
	for _, name := range []string{"NoDuplication", "NoMED", "LocalPref"} {
		cfg := experiments.RefineConfigDefault()
		switch name {
		case "NoDuplication":
			cfg.DisableDuplication = true
		case "NoMED":
			cfg.DisableMED = true
		case "LocalPref":
			cfg.UseLocalPref = true
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o, err := s.RunPipeline(0.5, int64(i+1), cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*o.Train.Summary.Frac(o.Train.Summary.RIBOut), "pct-train-rib-out")
			}
		})
	}
}

// BenchmarkSimScale regenerates the §4.1 performance envelope (E9): the
// cost of simulating a single prefix over quasi-router topologies of
// increasing size. C-BGP needed 2-45 minutes per prefix on 16,500 routers
// across 14,500 ASes; this engine targets the same workload shape.
func BenchmarkSimScale(b *testing.B) {
	for _, size := range []struct {
		name  string
		ases  int
		extra int // extra edges per AS beyond the spanning tree
	}{
		{"1kAS", 1000, 2},
		{"5kAS", 5000, 2},
		{"15kAS", 14500, 2},
	} {
		b.Run(size.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			net := sim.NewNetwork(bgp.QuasiRouterConfig)
			routers := make([]*sim.Router, size.ases)
			for i := range routers {
				r, err := net.AddRouter(bgp.ASN(i+1), 0)
				if err != nil {
					b.Fatal(err)
				}
				routers[i] = r
			}
			for i := 1; i < size.ases; i++ {
				net.Connect(routers[i], routers[rng.Intn(i)])
				for e := 0; e < size.extra; e++ {
					j := rng.Intn(size.ases)
					if j != i && routers[i].PeerTo(routers[j].ID) == nil {
						net.Connect(routers[i], routers[j])
					}
				}
			}
			b.ReportMetric(float64(net.NumSessions()), "sessions")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := net.Run(0, []bgp.RouterID{routers[i%size.ases].ID}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredictCombinedSplit regenerates the §4.2 combined split
// (E7b): held-out observation points observing held-out origins.
func BenchmarkPredictCombinedSplit(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := s.CombinedSplit(0.5, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		v := o.Valid.Summary
		b.ReportMetric(100*v.Frac(v.DownToTieBreak()), "pct-down-to-tie-break")
	}
}

// BenchmarkMultiPrefixStudy regenerates the §3.2 prefixes-per-path
// analysis with multi-prefix origins (E8b).
func BenchmarkMultiPrefixStudy(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.NumTier3 /= 2
	cfg.NumStub /= 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, _, err := experiments.MultiPrefixStudy(cfg, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWhatIfFidelity regenerates the E13 study: de-peering
// predictions validated against the re-simulated ground truth.
func BenchmarkWhatIfFidelity(b *testing.B) {
	s := suite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := s.WhatIfFidelity(5, 2)
		if err != nil {
			b.Fatal(err)
		}
		if res.Cases > 0 {
			b.ReportMetric(100*float64(res.ExactSet)/float64(res.Cases), "pct-exact")
		}
	}
}
