module asmodel

go 1.22
