// What-if study: the question class that motivates the paper ("what if a
// certain peering link was removed?", §1). We refine a model, then
// de-peer the busiest tier-1 link and compare every observation AS's
// predicted routes before and after — including against the ground truth,
// which a real operator would not have.
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"
	"sort"

	"asmodel"
	"asmodel/internal/topology"
)

func main() {
	cfg := asmodel.DefaultGenConfig()
	cfg.NumTier2, cfg.NumTier3, cfg.NumStub = 15, 40, 80
	cfg.NumVantageASes = 20
	internet, err := asmodel.GenerateInternet(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := internet.RunAll()
	if err != nil {
		log.Fatal(err)
	}
	ds.Normalize()

	// Refine on everything: for what-if studies the model should absorb
	// all available observations.
	m, res, err := asmodel.BuildAndRefine(ds, ds, asmodel.RefineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatalf("model does not reproduce the observations: %+v", res)
	}

	// Find the AS edge crossed by the most observed paths: the most
	// consequential link to remove.
	crossings := map[topology.Edge]int{}
	for _, r := range ds.Records {
		for i := 0; i+1 < len(r.Path); i++ {
			crossings[topology.MakeEdge(r.Path[i], r.Path[i+1])]++
		}
	}
	var busiest topology.Edge
	best := 0
	edges := make([]topology.Edge, 0, len(crossings))
	for e := range crossings {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		return edges[i].A < edges[j].A || edges[i].A == edges[j].A && edges[i].B < edges[j].B
	})
	for _, e := range edges {
		if crossings[e] > best {
			best = crossings[e]
			busiest = e
		}
	}
	fmt.Printf("busiest observed link: AS%d -- AS%d (crossed by %d observed paths)\n\n",
		busiest.A, busiest.B, best)

	// Pick a prefix whose observed paths cross that link.
	var prefix string
	for _, r := range ds.Records {
		for i := 0; i+1 < len(r.Path); i++ {
			if topology.MakeEdge(r.Path[i], r.Path[i+1]) == busiest {
				prefix = r.Prefix
				break
			}
		}
		if prefix != "" {
			break
		}
	}

	// Predict the impact of de-peering on every observation AS.
	changes, err := m.WhatIfDepeer(prefix, busiest.A, busiest.B, ds.ObsASes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("de-peering AS%d--AS%d, prefix %s — predicted route changes:\n", busiest.A, busiest.B, prefix)
	changed := 0
	for _, c := range changes {
		if !c.Changed() {
			continue
		}
		changed++
		fmt.Printf("  AS%-6d before: %v\n", c.AS, c.Before)
		fmt.Printf("           after:  %v\n", c.After)
	}
	fmt.Printf("%d of %d observation ASes change routes; the rest are unaffected\n",
		changed, len(changes))
}
