// Diversity analysis: the §3 data study of the paper on a dataset — the
// Figure 2 histogram, the Table 1 quantiles, a Figure 3 style case study
// of the most diverse (prefix, AS) pair, and why one router per AS cannot
// represent what the data shows.
//
//	go run ./examples/diversity            # generates its own dataset
//	go run ./examples/diversity paths.txt  # analyses a dataset file
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"asmodel"
	"asmodel/internal/stats"
)

func main() {
	ds, err := loadOrGenerate()
	if err != nil {
		log.Fatal(err)
	}
	ds.Normalize()
	fmt.Printf("dataset: %d records, %d prefixes, %d observation points, %d observation ASes\n\n",
		ds.Len(), len(ds.Prefixes()), len(ds.ObsPoints()), len(ds.ObsASes()))

	// Figure 2: distinct AS-paths per (origin, observation) AS pair.
	h := stats.NewHistogram()
	for _, n := range ds.DistinctPathsPerPair() {
		h.Add(n)
	}
	fmt.Printf("distinct AS-paths per AS pair (%d pairs, %.1f%% with more than one):\n",
		h.Total(), 100*h.FracAbove(1))
	var b strings.Builder
	h.Render(&b, 50, true)
	fmt.Print(b.String())

	// Table 1: per-AS maximum received diversity.
	div := ds.MaxReceivedDiversity()
	samples := make([]int, 0, len(div))
	for _, v := range div {
		samples = append(samples, v)
	}
	fmt.Printf("\nmax # unique AS-paths an AS receives toward any prefix (lower bound on quasi-routers needed):\n")
	for _, q := range []float64{0.5, 0.75, 0.9, 0.95, 0.99} {
		fmt.Printf("  p%-3.0f %d\n", q*100, stats.Quantile(samples, q))
	}

	// Figure 3 style: the most diverse (AS, prefix) pair.
	type key struct {
		as     asmodel.ASN
		prefix string
	}
	received := map[key]map[string]bool{}
	for _, r := range ds.Records {
		for i := 0; i+1 < len(r.Path); i++ {
			k := key{r.Path[i], r.Prefix}
			if received[k] == nil {
				received[k] = map[string]bool{}
			}
			received[k][r.Path[i+1:].String()] = true
		}
	}
	var bestKey key
	bestN := 0
	keys := make([]key, 0, len(received))
	for k := range received {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i].as < keys[j].as || keys[i].as == keys[j].as && keys[i].prefix < keys[j].prefix
	})
	for _, k := range keys {
		if len(received[k]) > bestN {
			bestN, bestKey = len(received[k]), k
		}
	}
	fmt.Printf("\nmost diverse case: AS%d receives %d distinct paths toward %s:\n",
		bestKey.as, bestN, bestKey.prefix)
	var paths []string
	for p := range received[bestKey] {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Printf("  AS%d <- %s\n", bestKey.as, p)
	}
	fmt.Printf("\na single-router AS model can propagate only ONE of these — the paper's\n" +
		"motivation for quasi-routers (§3.2)\n")
}

func loadOrGenerate() (*asmodel.Dataset, error) {
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return asmodel.ReadDataset(f)
	}
	cfg := asmodel.DefaultGenConfig()
	internet, err := asmodel.GenerateInternet(cfg)
	if err != nil {
		return nil, err
	}
	return internet.RunAll()
}
