// Ingest: combine every supported observation source — an MRT
// TABLE_DUMP_V2 RIB dump, a replayed BGP4MP update stream, and a
// looking-glass "show ip bgp" table — into one dataset and refine a model
// over it. The example fabricates its three inputs first, so it runs
// self-contained; point the same code at Routeviews/RIPE files for real
// data.
//
//	go run ./examples/ingest
package main

import (
	"bytes"
	"fmt"
	"log"
	"net/netip"
	"strings"

	"asmodel"
	"asmodel/internal/bgp"
	"asmodel/internal/mrt"
)

func main() {
	// --- Source 1: an MRT RIB dump (normally rib.YYYYMMDD.HHMM.mrt). ---
	ribDump := fabricateRIBDump()
	ds, err := asmodel.MRTToDataset(bytes.NewReader(ribDump))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MRT RIB dump:      %d records\n", ds.Len())

	// --- Source 2: a BGP4MP update stream, replayed to a snapshot. ---
	updates := fabricateUpdateStream()
	uds, _, err := mrt.UpdatesToDataset(bytes.NewReader(updates), 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update replay:     %d records\n", uds.Len())

	// --- Source 3: a looking-glass table published by AS20. ---
	lgTable := `   Network          Next Hop            Metric LocPrf Weight Path
*> 192.0.2.0/24     10.0.0.1                 0             0 40 i
*  192.0.2.0/24     10.0.0.2                 0             0 30 40 i
*> 198.51.100.0/24  10.0.0.1                 0             0 10 30 i
`
	lds := &asmodel.Dataset{}
	if err := asmodel.ParseLookingGlass(strings.NewReader(lgTable), "lg-as20", 20, lds); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("looking glass:     %d records\n", lds.Len())

	// --- Merge, normalize, model. ---
	ds.Merge(uds, lds).Normalize()
	fmt.Printf("merged+normalized: %d records, %d prefixes, %d observation points\n",
		ds.Len(), len(ds.Prefixes()), len(ds.ObsPoints()))

	m, res, err := asmodel.BuildAndRefine(ds, ds, asmodel.RefineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refined: converged=%v in %d iterations (+%d quasi-routers)\n",
		res.Converged, res.Iterations, res.QuasiRoutersAdded)

	paths, err := m.PredictPaths("192.0.2.0/24", 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AS10's predicted paths toward 192.0.2.0/24:\n")
	for _, p := range paths {
		fmt.Printf("  %s\n", p)
	}
}

// fabricateRIBDump builds a tiny TABLE_DUMP_V2 file: peers in AS10 and
// AS30 with routes toward 192.0.2.0/24 (origin AS40).
func fabricateRIBDump() []byte {
	var buf bytes.Buffer
	peers := []mrt.PeerEntry{
		{BGPID: netip.MustParseAddr("10.0.0.10"), Addr: netip.MustParseAddr("10.1.0.10"), AS: 10},
		{BGPID: netip.MustParseAddr("10.0.0.30"), Addr: netip.MustParseAddr("10.1.0.30"), AS: 30},
	}
	w := mrt.NewWriter(&buf)
	tw, err := mrt.NewTableDumpWriter(w, 1131867000, "example", peers)
	if err != nil {
		log.Fatal(err)
	}
	entries := []mrt.RIBEntry{
		{PeerIndex: 0, Originated: 1131860000, Attrs: &mrt.PathAttrs{
			Origin: bgp.OriginIGP, Segments: mrt.SequencePath(bgp.Path{10, 30, 40}),
			NextHop: peers[0].Addr}},
		{PeerIndex: 1, Originated: 1131860000, Attrs: &mrt.PathAttrs{
			Origin: bgp.OriginIGP, Segments: mrt.SequencePath(bgp.Path{30, 40}),
			NextHop: peers[1].Addr}},
	}
	if err := tw.WriteRIB(1131867000, netip.MustParsePrefix("192.0.2.0/24"), entries); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

// fabricateUpdateStream builds a BGP4MP stream: AS10 announces a route
// toward 198.51.100.0/24 (origin AS30), then refreshes it.
func fabricateUpdateStream() []byte {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	u := &mrt.Update{
		Attrs: &mrt.PathAttrs{
			Origin:   bgp.OriginIGP,
			Segments: mrt.SequencePath(bgp.Path{10, 30}),
			NextHop:  netip.MustParseAddr("10.1.0.10"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")},
	}
	for ts := uint32(1131860000); ts < 1131860002; ts++ {
		if err := w.WriteBGP4MPUpdate(ts, 10, 65000,
			netip.MustParseAddr("10.1.0.10"), netip.MustParseAddr("10.9.9.9"), u); err != nil {
			log.Fatal(err)
		}
	}
	return buf.Bytes()
}
