// Quickstart: generate a small synthetic Internet, build and refine an
// AS-routing model on half the observation points, and predict routes for
// the other half — the full §4 pipeline of the paper in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"asmodel"
)

func main() {
	// 1. Obtain BGP observations. Real deployments load Routeviews/RIPE
	// dumps (asmodel.MRTToDataset); here we generate a ground-truth
	// Internet whose vantage points play the role of the collectors.
	cfg := asmodel.DefaultGenConfig()
	cfg.NumTier2, cfg.NumTier3, cfg.NumStub = 15, 40, 80
	cfg.NumVantageASes = 20
	internet, err := asmodel.GenerateInternet(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := internet.RunAll()
	if err != nil {
		log.Fatal(err)
	}
	ds.Normalize() // strip prepending, drop loops, de-duplicate (§3.1)
	fmt.Printf("dataset: %d records, %d prefixes, %d observation points\n",
		ds.Len(), len(ds.Prefixes()), len(ds.ObsPoints()))

	// 2. Split into training and validation feeds (§4.2).
	train, valid := ds.SplitByObsPoint(0.5, 42)

	// 3. Build the initial model (one quasi-router per AS) and refine it
	// until it reproduces every training path (§4.5-4.6).
	m, res, err := asmodel.BuildAndRefine(ds, train, asmodel.RefineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refinement: %d iterations, converged=%v, +%d quasi-routers, %d filters, %d MED rules\n",
		res.Iterations, res.Converged, res.QuasiRoutersAdded, res.FiltersAdded, res.MEDRules)

	// 4. Predict the held-out observation points' routes (§5).
	ev, err := m.Evaluate(valid)
	if err != nil {
		log.Fatal(err)
	}
	s := ev.Summary
	fmt.Printf("validation: %d paths — RIB-Out %.1f%%, down-to-tie-break %.1f%%, RIB-In %.1f%%\n",
		s.Total, 100*s.Frac(s.RIBOut), 100*s.Frac(s.DownToTieBreak()), 100*s.Frac(s.RIBInMatches()))

	// 5. Ask the model a concrete question: which paths does the first
	// tier-1 AS use toward some stub prefix?
	prefix := ds.Prefixes()[len(ds.Prefixes())-1]
	paths, err := m.PredictPaths(prefix, internet.Tier1[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted paths of AS%d toward %s:\n", internet.Tier1[0], prefix)
	for _, p := range paths {
		fmt.Printf("  %s\n", p)
	}
}
